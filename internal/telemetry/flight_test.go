package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testSpan(trace, span, parent, sid uint64, layer, name string, at time.Time, dur time.Duration) Span {
	return Span{TraceID: trace, SpanID: span, Parent: parent, SID: sid, Layer: layer, Name: name, Start: at, Dur: dur}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(dir, "hub", nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	fr.Record(testSpan(7, 7, 0, 42, "hub", "session", t0, time.Second))
	fr.Record(Span{TraceID: 7, SpanID: 8, Parent: 7, SID: 42, Layer: "chain", Name: "deploy",
		Start: t0.Add(time.Millisecond), Dur: time.Millisecond, Attrs: "gas=3000000"})
	fr.Record(Span{SID: 1, Layer: "hub", Name: "untraced", Start: t0}) // legacy ring span
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if fr.Written() != 3 || fr.Drops() != 0 {
		t.Fatalf("written=%d drops=%d, want 3/0", fr.Written(), fr.Drops())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "hub-*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("got %d files, want 1", len(files))
	}
	spans, err := ReadFlightFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("read %d spans, want 3", len(spans))
	}
	got := spans[1]
	if got.Proc != "hub" || got.TraceID != 7 || got.SpanID != 8 || got.Parent != 7 ||
		got.SID != 42 || got.Layer != "chain" || got.Name != "deploy" ||
		got.Attrs != "gas=3000000" || got.Dur != time.Millisecond || !got.Start.Equal(t0.Add(time.Millisecond)) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if spans[2].TraceID != 0 || spans[2].SpanID != 0 {
		t.Fatalf("untraced span grew ids: %+v", spans[2])
	}
	// Closed recorder: further records are counted drops, never panics.
	fr.Record(testSpan(1, 1, 0, 0, "x", "late", t0, 0))
	if fr.Drops() != 1 {
		t.Fatalf("drops after close = %d, want 1", fr.Drops())
	}
}

func TestFlightRecorderRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(dir, "tower", &FlightOptions{MaxFileBytes: 600, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	for i := 0; i < 50; i++ {
		fr.Record(testSpan(9, uint64(i+1), 0, 5, "tower", fmt.Sprintf("span-%03d", i), t0, time.Millisecond))
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "tower-*.jsonl"))
	if len(files) != 2 {
		t.Fatalf("got %d files after pruning, want MaxFiles=2", len(files))
	}
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		// One line may straddle the limit; the cap is per-line granular.
		if st.Size() > 600+512 {
			t.Fatalf("%s is %d bytes, rotation failed", f, st.Size())
		}
	}
	// The newest file holds the LAST spans (oldest were pruned with their file).
	spans, err := ReadFlightFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	last := spans[len(spans)-1]
	if last.Name != "span-049" {
		t.Fatalf("last surviving span is %q, want span-049", last.Name)
	}
	if int(fr.Written()) != 50 {
		t.Fatalf("written=%d, want 50 (pruning deletes files, not the tally)", fr.Written())
	}
}

func TestFlightRecorderConcurrentWritersDropAccounting(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(dir, "p", &FlightOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 500
	var wg sync.WaitGroup
	t0 := time.Unix(1_700_000_000, 0)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				fr.Record(testSpan(uint64(w+1), uint64(w*each+i+1), 0, uint64(w), "bench", "s", t0, 0))
			}
		}(w)
	}
	wg.Wait()
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	written, drops := fr.Written(), fr.Drops()
	if written+drops != writers*each {
		t.Fatalf("written(%d)+drops(%d) = %d, want every Record accounted (%d)", written, drops, written+drops, writers*each)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "p-*.jsonl"))
	spans, err := ReadFlightFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(spans)) != written {
		t.Fatalf("%d spans on disk, recorder claims %d written", len(spans), written)
	}
}

func TestFlightRecorderDeadWriterKeepsContract(t *testing.T) {
	dir := t.TempDir()
	// A file where the directory should be: every open fails, yet Record
	// must never block and Close must still account for everything.
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFlightRecorder(path, "p", nil)
	if err == nil {
		fr.Record(testSpan(1, 1, 0, 0, "x", "s", time.Unix(0, 0), 0))
		if err := fr.Close(); err == nil {
			t.Fatal("recorder with an unusable dir reported no error")
		}
		if fr.Written() != 0 {
			t.Fatalf("written=%d on a dead writer", fr.Written())
		}
	}
}

func TestBuildTimelineCausalOrder(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	mk := func(proc string, s Span) FlightSpan { return FlightSpan{Span: s, Proc: proc} }
	spans := []FlightSpan{
		// Supplied out of order, across three procs.
		mk("tower-1", testSpan(7, 30, 7, 42, "federation", "adopt", t0.Add(3*time.Millisecond), time.Millisecond)),
		mk("hub", testSpan(7, 7, 0, 42, "hub", "session", t0, 10*time.Millisecond)),
		mk("hub", testSpan(7, 8, 7, 42, "chain", "deploy", t0.Add(time.Millisecond), time.Millisecond)),
		mk("tower-2", testSpan(7, 40, 7, 42, "federation", "adopt", t0.Add(4*time.Millisecond), time.Millisecond)),
		mk("tower-1", testSpan(7, 31, 30, 42, "tower", "dispute", t0.Add(5*time.Millisecond), 2*time.Millisecond)),
		mk("hub", testSpan(9, 90, 0, 1, "hub", "other-trace", t0, 0)),
	}
	tl := BuildTimeline(spans, 7)
	if len(tl) != 5 {
		t.Fatalf("timeline has %d entries, want 5 (other trace excluded)", len(tl))
	}
	if tl[0].SpanID != 7 || tl[0].Depth != 0 {
		t.Fatalf("root is %+v, want the hub session span at depth 0", tl[0])
	}
	depth := map[uint64]int{}
	for _, e := range tl {
		depth[e.SpanID] = e.Depth
		if e.Orphan {
			t.Fatalf("span %d flagged orphan with its parent present", e.SpanID)
		}
	}
	if depth[8] != 1 || depth[30] != 1 || depth[40] != 1 || depth[31] != 2 {
		t.Fatalf("depths wrong: %v", depth)
	}
	// Children walk in start order: deploy before the adoptions.
	if tl[1].SpanID != 8 {
		t.Fatalf("first child is span %d, want 8 (earliest start)", tl[1].SpanID)
	}
	text := FormatTimeline(tl)
	for _, want := range []string{"tower-1", "tower-2", "adopt", "dispute"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted timeline missing %q:\n%s", want, text)
		}
	}
}

func TestBuildTimelineOrphansAndCycles(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	spans := []FlightSpan{
		// Parent 99 was recorded by a tower whose file wasn't supplied.
		{Span: testSpan(5, 10, 99, 1, "tower", "orphaned", t0, 0)},
		// Corrupt input: self-parented, and a two-span parent cycle.
		{Span: testSpan(5, 11, 11, 1, "x", "self", t0, 0)},
		{Span: testSpan(5, 12, 13, 1, "x", "cycle-a", t0, 0)},
		{Span: testSpan(5, 13, 12, 1, "x", "cycle-b", t0.Add(time.Millisecond), 0)},
	}
	tl := BuildTimeline(spans, 5)
	if len(tl) != 4 {
		t.Fatalf("timeline has %d entries, want all 4 (nothing silently vanishes)", len(tl))
	}
	var orphans int
	for _, e := range tl {
		if e.Orphan {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("%d orphan marks, want exactly the missing-parent span", orphans)
	}
	if BuildTimeline(spans, 0) != nil {
		t.Fatal("trace 0 must never build a timeline")
	}
}

func TestSummarizeTraces(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	spans := []FlightSpan{
		{Span: testSpan(7, 7, 0, 42, "hub", "session", t0.Add(time.Second), 10*time.Millisecond), Proc: "hub"},
		{Span: testSpan(7, 8, 7, 42, "tower", "dispute", t0.Add(time.Second+2*time.Millisecond), 5*time.Millisecond), Proc: "tower-1"},
		{Span: testSpan(3, 30, 0, 9, "hub", "session", t0, time.Millisecond), Proc: "hub"},
		{Span: testSpan(0, 0, 0, 1, "hub", "untraced", t0, 0), Proc: "hub"},
	}
	sums := SummarizeTraces(spans)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2 (untraced spans excluded)", len(sums))
	}
	if sums[0].TraceID != 3 || sums[1].TraceID != 7 {
		t.Fatalf("chronological order broken: %+v", sums)
	}
	s7 := sums[1]
	if s7.SID != 42 || s7.Spans != 2 {
		t.Fatalf("trace 7 summary: %+v", s7)
	}
	if strings.Join(s7.Procs, ",") != "hub,tower-1" || strings.Join(s7.Layers, ",") != "hub,tower" {
		t.Fatalf("trace 7 procs=%v layers=%v", s7.Procs, s7.Layers)
	}
	if s7.Dur != 10*time.Millisecond {
		t.Fatalf("trace 7 dur=%s, want the root span's full 10ms extent", s7.Dur)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(Span{})
	fr.RegisterMetrics(nil)
	if fr.Drops() != 0 || fr.Written() != 0 || fr.Err() != nil || fr.Close() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestFlightRecorderMetricsAndTee(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(dir, "hub", nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	fr.RegisterMetrics(reg)
	tr := NewTracer(16)
	tr.Tee(fr.Record)
	tc := tr.NewTrace()
	tr.RecordSpan(tc, 0, 1, "hub", "session", time.Unix(1_700_000_000, 0), time.Millisecond, "")
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `telemetry_flight_written_total{proc="hub"} 1`) {
		t.Fatalf("flight metrics missing from exposition:\n%s", buf.String())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "hub-*.jsonl"))
	spans, err := ReadFlightFiles(files...)
	if err != nil || len(spans) != 1 {
		t.Fatalf("teed span not on disk: %v, %d spans", err, len(spans))
	}
	if spans[0].TraceID != tc.TraceID {
		t.Fatalf("teed span trace %#x, want %#x", spans[0].TraceID, tc.TraceID)
	}
}
