package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := NewGauge()
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	h := r.Histogram("z", SizeBuckets())
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatal("nil histogram snapshot must be zero")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	r.RegisterCounter(NewCounter(), "w")
	r.RegisterHistogram(NewHistogram(SizeBuckets()), "v")
	r.WritePrometheus(&strings.Builder{})
	r.PublishExpvar("nil-registry")
	r.RegisterRuntimeMetrics()
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := h.Merge(NewHistogram(SizeBuckets())); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 113.5 {
		t.Fatalf("sum = %g, want 113.5", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %g, want 100", h.Max())
	}
	// rank(0.5) = 3 → third obs lives in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", q)
	}
	// p99 lands in the +Inf bucket → clamped to last finite bound.
	if q := h.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %g, want 8 (clamped)", q)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(s.Buckets))
	}
	if !math.IsInf(s.Buckets[4].UpperBound, 1) || s.Buckets[4].Count != 6 {
		t.Fatalf("last bucket = %+v, want +Inf cum 6", s.Buckets[4])
	}
	if s.Buckets[0].Count != 1 || s.Buckets[1].Count != 3 {
		t.Fatalf("cumulative counts wrong: %+v", s.Buckets)
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bucket counts must fail")
	}
	c := NewHistogram([]float64{1, 3})
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched bounds must fail")
	}
}

func TestHistogramMergeConcurrent(t *testing.T) {
	const n = 1000
	dst := NewHistogram(SizeBuckets())
	srcs := make([]*Histogram, 4)
	var wg sync.WaitGroup
	for i := range srcs {
		srcs[i] = NewHistogram(SizeBuckets())
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				h.Observe(float64(j % 100))
			}
		}(srcs[i])
	}
	wg.Wait()
	// Merge all sources into dst from concurrent goroutines while dst also
	// takes direct observations.
	wg.Add(len(srcs) + 1)
	go func() {
		defer wg.Done()
		for j := 0; j < n; j++ {
			dst.Observe(float64(j % 100))
		}
	}()
	for _, src := range srcs {
		go func(h *Histogram) {
			defer wg.Done()
			if err := dst.Merge(h); err != nil {
				t.Errorf("merge: %v", err)
			}
		}(src)
	}
	wg.Wait()
	if got := dst.Count(); got != uint64(n*(len(srcs)+1)) {
		t.Fatalf("merged count = %d, want %d", got, n*(len(srcs)+1))
	}
	if dst.Max() != 99 {
		t.Fatalf("merged max = %g, want 99", dst.Max())
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total").Inc()
				r.Counter("labeled_total", "worker", string(rune('a'+id))).Inc()
				r.Gauge("depth").Set(float64(j))
				r.Histogram("lat_seconds", DurationBuckets()).Observe(0.001 * float64(j))
				if j%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("lat_seconds", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "k", "v")
	b := r.Counter("x_total", "k", "v")
	if a != b {
		t.Fatal("same series must return the same handle")
	}
	own := NewCounter()
	own.Add(7)
	got := r.RegisterCounter(own, "whisper_dropped_total", "reason", "expired")
	if got != own {
		t.Fatal("first registration must adopt the provided counter")
	}
	again := r.RegisterCounter(NewCounter(), "whisper_dropped_total", "reason", "expired")
	if again != own {
		t.Fatal("re-registration must return the original handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "k", "v")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hub_sessions_total").Add(3)
	r.Counter("hub_stage_total", "stage", "split").Add(2)
	r.Gauge("chain_pool_depth").Set(5)
	r.GaugeFunc("live", func() float64 { return 1.5 })
	h := r.Histogram("store_fsync_seconds", []float64{0.001, 0.01})
	h.Observe(0.002)
	h.Observe(5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE hub_sessions_total counter\nhub_sessions_total 3\n",
		"hub_stage_total{stage=\"split\"} 2\n",
		"# TYPE chain_pool_depth gauge\nchain_pool_depth 5\n",
		"live 1.5\n",
		"# TYPE store_fsync_seconds histogram\n",
		"store_fsync_seconds_bucket{le=\"0.001\"} 0\n",
		"store_fsync_seconds_bucket{le=\"0.01\"} 1\n",
		"store_fsync_seconds_bucket{le=\"+Inf\"} 2\n",
		"store_fsync_seconds_sum 5.002\n",
		"store_fsync_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramLabeledExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hub_stage_seconds", []float64{1}, "stage", "split")
	h.Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`hub_stage_seconds_bucket{stage="split",le="1"} 1`,
		`hub_stage_seconds_sum{stage="split"} 0.5`,
		`hub_stage_seconds_count{stage="split"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("b_seconds", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["a_total"] != 2 {
		t.Fatalf("snapshot a_total = %g", snap["a_total"])
	}
	if snap["b_seconds_count"] != 1 || snap["b_seconds_sum"] != 0.5 {
		t.Fatalf("snapshot histogram views wrong: %v", snap)
	}
	r.PublishExpvar("telemetry_test_snapshot")
	r.PublishExpvar("telemetry_test_snapshot") // second publish must not panic
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntimeMetrics()
	snap := r.Snapshot()
	if snap["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %g, want >= 1", snap["go_goroutines"])
	}
	if snap["go_heap_alloc_bytes"] <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %g, want > 0", snap["go_heap_alloc_bytes"])
	}
}

func TestExpBucketsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
		func() { NewHistogram(nil) },
		func() { NewHistogram([]float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}
