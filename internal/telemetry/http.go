package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// NewMux builds the telemetry HTTP surface:
//
//	/metrics           Prometheus text exposition of the registry
//	/healthz           liveness probe ("ok")
//	/debug/trace/{sid} JSON span timeline for one session
//	/debug/pprof/*     the standard runtime profiles
//	/debug/vars        expvar
//
// reg and tr may each be nil; the endpoints degrade to empty output.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		sid, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad session id", http.StatusBadRequest)
			return
		}
		spans := tr.SID(sid)
		w.Header().Set("Content-Type", "application/json")
		type line struct {
			SID   uint64 `json:"sid"`
			Layer string `json:"layer"`
			Name  string `json:"name"`
			Start string `json:"start"`
			DurUS int64  `json:"dur_us"`
			Attrs string `json:"attrs,omitempty"`
		}
		out := struct {
			SID   uint64 `json:"sid"`
			Spans []line `json:"spans"`
		}{SID: sid, Spans: make([]line, 0, len(spans))}
		for _, s := range spans {
			out.Spans = append(out.Spans, line{
				SID:   s.SID,
				Layer: s.Layer,
				Name:  s.Name,
				Start: s.Start.Format(time.RFC3339Nano),
				DurUS: s.Dur.Microseconds(),
				Attrs: s.Attrs,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is a running telemetry listener.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the telemetry surface on addr (e.g. ":6060"). Telemetry is
// opt-in: nothing listens unless this is called. The returned server is
// already accepting; Close to stop.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg, tr)}
	go srv.Serve(ln)
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
