package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// traceLine is the JSON rendering of one span on the debug surface.
type traceLine struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	Parent  string `json:"parent_id,omitempty"`
	SID     uint64 `json:"sid"`
	Layer   string `json:"layer"`
	Name    string `json:"name"`
	Start   string `json:"start"`
	DurUS   int64  `json:"dur_us"`
	Attrs   string `json:"attrs,omitempty"`
}

func toTraceLine(s Span) traceLine {
	l := traceLine{
		SID:   s.SID,
		Layer: s.Layer,
		Name:  s.Name,
		Start: s.Start.Format(time.RFC3339Nano),
		DurUS: s.Dur.Microseconds(),
		Attrs: s.Attrs,
	}
	if s.TraceID != 0 {
		l.TraceID = fmt.Sprintf("%016x", s.TraceID)
		l.SpanID = fmt.Sprintf("%016x", s.SpanID)
	}
	if s.Parent != 0 {
		l.Parent = fmt.Sprintf("%016x", s.Parent)
	}
	return l
}

func writeIndentedJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// filterLayer drops spans not belonging to layer ("" keeps all).
func filterLayer(spans []Span, layer string) []Span {
	if layer == "" {
		return spans
	}
	out := spans[:0]
	for _, s := range spans {
		if s.Layer == layer {
			out = append(out, s)
		}
	}
	return out
}

// NewMux builds the telemetry HTTP surface:
//
//	/metrics               Prometheus text exposition of the registry
//	/healthz               component health rollup (JSON; 503 when unhealthy)
//	/debug/trace           recent traces index (?layer= filters the summaries)
//	/debug/trace/{sid}     JSON span timeline for one session (?layer= filters)
//	/debug/pprof/*         the standard runtime profiles
//	/debug/vars            expvar
//
// reg and tr may each be nil; the endpoints degrade to empty output.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		rep := reg.HealthReport()
		if rep.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeIndentedJSON(w, rep)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		layer := r.URL.Query().Get("layer")
		sums := tr.Traces(100)
		type row struct {
			TraceID string           `json:"trace_id"`
			SID     uint64           `json:"sid"`
			Spans   int              `json:"spans"`
			Start   string           `json:"start"`
			DurUS   int64            `json:"dur_us"`
			Layers  map[string]int64 `json:"layers_us"`
		}
		out := make([]row, 0, len(sums))
		for _, s := range sums {
			if layer != "" {
				if _, ok := s.Layers[layer]; !ok {
					continue
				}
			}
			layers := make(map[string]int64, len(s.Layers))
			for k, v := range s.Layers {
				layers[k] = v.Microseconds()
			}
			out = append(out, row{
				TraceID: fmt.Sprintf("%016x", s.TraceID),
				SID:     s.SID,
				Spans:   s.Spans,
				Start:   s.Start.Format(time.RFC3339Nano),
				DurUS:   s.Dur.Microseconds(),
				Layers:  layers,
			})
		}
		writeIndentedJSON(w, struct {
			Traces []row `json:"traces"`
		}{Traces: out})
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		sid, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad session id", http.StatusBadRequest)
			return
		}
		spans := filterLayer(tr.SID(sid), r.URL.Query().Get("layer"))
		out := struct {
			SID   uint64      `json:"sid"`
			Spans []traceLine `json:"spans"`
		}{SID: sid, Spans: make([]traceLine, 0, len(spans))}
		for _, s := range spans {
			out.Spans = append(out.Spans, toTraceLine(s))
		}
		writeIndentedJSON(w, out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is a running telemetry listener.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the telemetry surface on addr (e.g. ":6060"). Telemetry is
// opt-in: nothing listens unless this is called. The returned server is
// already accepting; Close to stop.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg, tr)}
	go srv.Serve(ln)
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
