package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordAndQuery(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Record(7, "hub", "stage:split", base, time.Millisecond, "")
	tr.Record(7, "chain", "tx", base.Add(time.Millisecond), 2*time.Millisecond, "kind=deploy")
	tr.Record(8, "hub", "stage:split", base, time.Millisecond, "")
	tr.Record(7, "tower", "settled", base.Add(3*time.Millisecond), 0, "")
	tr.Event(9, "tower", "settled", "")
	if ev := tr.SID(9); len(ev) != 1 || ev[0].Dur != 0 || ev[0].Start.IsZero() {
		t.Fatalf("event span wrong: %+v", ev)
	}

	spans := tr.SID(7)
	if len(spans) != 3 {
		t.Fatalf("got %d spans for sid 7, want 3", len(spans))
	}
	if spans[0].Layer != "hub" || spans[1].Layer != "chain" {
		t.Fatalf("spans out of order: %+v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("spans must come back start-ordered")
		}
	}
	layers := tr.Layers(7)
	if layers["chain"] != 2*time.Millisecond || layers["hub"] != time.Millisecond {
		t.Fatalf("layer rollup wrong: %v", layers)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	if tr.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", tr.Capacity())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, "hub", "x", time.Now(), 0, "")
	tr.Event(1, "hub", "x", "")
	if tr.SID(1) != nil || tr.Total() != 0 || tr.Capacity() != 0 || tr.Layers(1) != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if got := NewTracer(0).Capacity(); got != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTraceCapacity)
	}
}

// TestTracerTornRing hammers a tiny ring from many goroutines, forcing
// constant wraparound, then checks that no retained span is torn: every
// field of a span must be internally consistent with the writer that
// produced it.
func TestTracerTornRing(t *testing.T) {
	tr := NewTracer(32)
	const writers = 8
	const perWriter = 2000
	base := time.Unix(1700000000, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Encode writer+seq redundantly in every field so a torn
				// write (fields from two different records) is detectable.
				seq := uint64(w*perWriter + i)
				tr.Record(seq, fmt.Sprintf("layer-%d", seq%5), fmt.Sprintf("name-%d", seq),
					base.Add(time.Duration(seq)), time.Duration(seq%97), fmt.Sprintf("attr-%d", seq))
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", tr.Total(), writers*perWriter)
	}
	// Inspect every retained slot via SID lookups across the whole space.
	checked := 0
	for sid := uint64(0); sid < writers*perWriter; sid++ {
		for _, s := range tr.SID(sid) {
			if s.Layer != fmt.Sprintf("layer-%d", sid%5) ||
				s.Name != fmt.Sprintf("name-%d", sid) ||
				s.Attrs != fmt.Sprintf("attr-%d", sid) ||
				!s.Start.Equal(base.Add(time.Duration(sid))) ||
				s.Dur != time.Duration(sid%97) {
				t.Fatalf("torn span for sid %d: %+v", sid, s)
			}
			checked++
		}
	}
	if checked != 32 {
		t.Fatalf("retained spans = %d, want ring capacity 32", checked)
	}
}
