package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a session's lifecycle, attributed to a
// layer ("hub", "whisper", "chain", "store", "tower", "federation"). An
// event is a span with zero duration. Attrs is a small free-form note
// ("kind=signed", "tx=0xab..".) — a string, not a map, to keep recording
// allocation-light.
//
// TraceID/SpanID/Parent are the causal tier: spans recorded through the
// TraceContext API carry a trace identity and a parent edge, so a
// session's timeline can be stitched across processes. Spans recorded
// through the legacy Record/Event API leave them zero and remain plain
// SID-bucketed samples.
type Span struct {
	TraceID uint64        `json:"trace_id,omitempty"`
	SpanID  uint64        `json:"span_id,omitempty"`
	Parent  uint64        `json:"parent_id,omitempty"`
	SID     uint64        `json:"sid"`
	Layer   string        `json:"layer"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Attrs   string        `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-size ring: old spans are overwritten,
// never freed, so a long-running hub holds a bounded trailing window of
// activity. All methods are nil-safe; a nil tracer records nothing.
//
// Span and trace IDs are allocated from a per-tracer random base plus an
// atomic sequence, so IDs minted by different tracers (one per process
// after the cross-process split) collide with negligible probability
// while staying cheap — no per-span entropy read.
type Tracer struct {
	idBase uint64
	idSeq  atomic.Uint64

	mu   sync.Mutex
	ring []Span
	n    uint64     // total spans ever recorded
	sink func(Span) // optional tee (flight recorder); called outside mu
}

// DefaultTraceCapacity holds roughly the last few hundred sessions' worth
// of spans at ~15 spans per session.
const DefaultTraceCapacity = 8192

// NewTracer creates a tracer holding the most recent capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	var seed [8]byte
	base := uint64(time.Now().UnixNano()) // fallback if the entropy pool fails
	if _, err := crand.Read(seed[:]); err == nil {
		base = binary.LittleEndian.Uint64(seed[:])
	}
	return &Tracer{idBase: base, ring: make([]Span, capacity)}
}

// nextID mints a non-zero identifier unique within this tracer.
func (t *Tracer) nextID() uint64 {
	for {
		if id := t.idBase + t.idSeq.Add(1); id != 0 {
			return id
		}
	}
}

// Tee registers a sink invoked (outside the tracer lock) for every span
// recorded from now on — the hook the flight recorder attaches to. A nil
// sink detaches.
func (t *Tracer) Tee(sink func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = sink
	t.mu.Unlock()
}

// record stores one span and fans it to the tee sink. The ring write is a
// single slot store under the tracer lock, so concurrent recorders never
// tear a span across fields.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = s
	t.n++
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// Record appends a completed span with no trace identity (legacy API;
// kept for call sites that sample work not tied to a session's causal
// timeline, like WAL appends).
func (t *Tracer) Record(sid uint64, layer, name string, start time.Time, dur time.Duration, attrs string) {
	if t == nil {
		return
	}
	t.record(Span{SID: sid, Layer: layer, Name: name, Start: start, Dur: dur, Attrs: attrs})
}

// Event records a point-in-time occurrence (zero duration) stamped now.
func (t *Tracer) Event(sid uint64, layer, name, attrs string) {
	if t == nil {
		return
	}
	t.Record(sid, layer, name, time.Now(), 0, attrs)
}

// NewTrace mints a fresh trace: the returned context names both the trace
// and its root span. Nothing is recorded yet — record the root with
// RecordSpan (parent 0) when its duration is known, or immediately with
// zero duration.
func (t *Tracer) NewTrace() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	id := t.nextID()
	return TraceContext{TraceID: id, Span: id}
}

// Child allocates a span identity under tc without recording anything —
// for work whose sub-spans must reference it as parent before it
// completes (a federation adopt that parents the rebuild's chain spans).
// Record it later with RecordSpan. A zero context yields a zero context.
func (t *Tracer) Child(tc TraceContext) TraceContext {
	if t == nil || !tc.Valid() {
		return TraceContext{}
	}
	return TraceContext{TraceID: tc.TraceID, Span: t.nextID()}
}

// RecordSpan records a completed span AS tc.Span with an explicit parent
// edge. With a zero context it degrades to a legacy untraced record.
func (t *Tracer) RecordSpan(tc TraceContext, parent uint64, sid uint64, layer, name string, start time.Time, dur time.Duration, attrs string) {
	if t == nil {
		return
	}
	if !tc.Valid() {
		t.Record(sid, layer, name, start, dur, attrs)
		return
	}
	t.record(Span{TraceID: tc.TraceID, SpanID: tc.Span, Parent: parent, SID: sid, Layer: layer, Name: name, Start: start, Dur: dur, Attrs: attrs})
}

// RecordChild records a completed span as a new child of tc and returns
// the child's context, so further work can hang below it. With a zero
// context it degrades to a legacy record and returns a zero context.
func (t *Tracer) RecordChild(tc TraceContext, sid uint64, layer, name string, start time.Time, dur time.Duration, attrs string) TraceContext {
	if t == nil {
		return TraceContext{}
	}
	child := t.Child(tc)
	if !child.Valid() {
		t.Record(sid, layer, name, start, dur, attrs)
		return TraceContext{}
	}
	t.RecordSpan(child, tc.Span, sid, layer, name, start, dur, attrs)
	return child
}

// EventChild records a zero-duration child span stamped now and returns
// its context.
func (t *Tracer) EventChild(tc TraceContext, sid uint64, layer, name, attrs string) TraceContext {
	return t.RecordChild(tc, sid, layer, name, time.Now(), 0, attrs)
}

// retained copies every span still held by the ring, recording order.
func (t *Tracer) retained() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.ring))
	lo := uint64(0)
	if t.n > size {
		lo = t.n - size
	}
	out := make([]Span, 0, t.n-lo)
	for i := lo; i < t.n; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}

// SID returns every retained span for the session, oldest first (by start
// time, then recording order). The result is a copy.
func (t *Tracer) SID(sid uint64) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.retained() {
		if s.SID == sid {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// ByTrace returns every retained span of one trace, oldest first.
func (t *Tracer) ByTrace(traceID uint64) []Span {
	if t == nil || traceID == 0 {
		return nil
	}
	var out []Span
	for _, s := range t.retained() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Spans returns a copy of every retained span, recording order — the
// bulk export used when merging several tracers' views of one fleet.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.retained()
}

// TraceSummary is one row of the recent-traces index: identity, reach and
// where the time went.
type TraceSummary struct {
	TraceID uint64                   `json:"trace_id"`
	SID     uint64                   `json:"sid"`
	Spans   int                      `json:"spans"`
	Start   time.Time                `json:"start"`
	Dur     time.Duration            `json:"dur_ns"`
	Layers  map[string]time.Duration `json:"layers"`
}

// Traces summarises retained traces, most recent first, at most limit
// rows (all when limit <= 0). Only spans recorded with a trace identity
// contribute.
func (t *Tracer) Traces(limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	byID := make(map[uint64]*TraceSummary)
	for _, s := range t.retained() {
		if s.TraceID == 0 {
			continue
		}
		sum := byID[s.TraceID]
		if sum == nil {
			sum = &TraceSummary{TraceID: s.TraceID, SID: s.SID, Start: s.Start, Layers: make(map[string]time.Duration)}
			byID[s.TraceID] = sum
		}
		if s.SID != 0 && sum.SID == 0 {
			sum.SID = s.SID
		}
		if s.Start.Before(sum.Start) {
			sum.Start = s.Start
		}
		if end := s.Start.Add(s.Dur).Sub(sum.Start); end > sum.Dur {
			sum.Dur = end
		}
		sum.Spans++
		sum.Layers[s.Layer] += s.Dur
	}
	out := make([]TraceSummary, 0, len(byID))
	for _, sum := range byID {
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Total returns how many spans have ever been recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Capacity returns the ring size (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Layers summarises retained spans for a session: total recorded duration
// per layer, in span-start order of first appearance. Useful for "where
// did session X spend its time" at a glance.
func (t *Tracer) Layers(sid uint64) map[string]time.Duration {
	spans := t.SID(sid)
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, s := range spans {
		out[s.Layer] += s.Dur
	}
	return out
}
