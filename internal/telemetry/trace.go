package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed region of a session's lifecycle, attributed to a
// layer ("hub", "whisper", "chain", "store", "tower", "federation"). An
// event is a span with zero duration. Attrs is a small free-form note
// ("kind=signed", "tx=0xab..".) — a string, not a map, to keep recording
// allocation-light.
type Span struct {
	SID   uint64        `json:"sid"`
	Layer string        `json:"layer"`
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Attrs string        `json:"attrs,omitempty"`
}

// Tracer records spans into a fixed-size ring: old spans are overwritten,
// never freed, so a long-running hub holds a bounded trailing window of
// activity. All methods are nil-safe; a nil tracer records nothing.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	n    uint64 // total spans ever recorded
}

// DefaultTraceCapacity holds roughly the last few hundred sessions' worth
// of spans at ~15 spans per session.
const DefaultTraceCapacity = 8192

// NewTracer creates a tracer holding the most recent capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record appends a completed span. The write is a single slot store under
// the tracer lock, so concurrent recorders never tear a span across
// fields.
func (t *Tracer) Record(sid uint64, layer, name string, start time.Time, dur time.Duration, attrs string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = Span{SID: sid, Layer: layer, Name: name, Start: start, Dur: dur, Attrs: attrs}
	t.n++
	t.mu.Unlock()
}

// Event records a point-in-time occurrence (zero duration) stamped now.
func (t *Tracer) Event(sid uint64, layer, name, attrs string) {
	if t == nil {
		return
	}
	t.Record(sid, layer, name, time.Now(), 0, attrs)
}

// SID returns every retained span for the session, oldest first (by start
// time, then recording order). The result is a copy.
func (t *Tracer) SID(sid uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Span
	size := uint64(len(t.ring))
	lo := uint64(0)
	if t.n > size {
		lo = t.n - size
	}
	for i := lo; i < t.n; i++ {
		if s := t.ring[i%size]; s.SID == sid {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Total returns how many spans have ever been recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Capacity returns the ring size (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Layers summarises retained spans for a session: total recorded duration
// per layer, in span-start order of first appearance. Useful for "where
// did session X spend its time" at a glance.
func (t *Tracer) Layers(sid uint64) map[string]time.Duration {
	spans := t.SID(sid)
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, s := range spans {
		out[s.Layer] += s.Dur
	}
	return out
}
