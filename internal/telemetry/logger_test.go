package telemetry

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a strings.Builder safe for the concurrent emit test.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLoggerLayersAndLevels(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf)
	fed := l.Layer("federation")
	fed.Logf("tower %s joined", "0xAB")
	fed.Debugf("hidden at the default Info level")
	l.Layer("whisper").Warnf("drop #%d", 8)
	out := buf.String()
	if !strings.Contains(out, "level=INFO") || !strings.Contains(out, `layer=federation`) ||
		!strings.Contains(out, `msg="tower 0xAB joined"`) {
		t.Fatalf("federation line malformed:\n%s", out)
	}
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked at Info level:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "layer=whisper") {
		t.Fatalf("whisper warn line malformed:\n%s", out)
	}

	// Per-layer level: federation to Debug, whisper stays at Info.
	l.SetLevel("federation", slog.LevelDebug)
	fed.Debugf("now visible")
	l.Layer("whisper").Debugf("still hidden")
	out = buf.String()
	if !strings.Contains(out, "now visible") || strings.Contains(out, "still hidden") {
		t.Fatalf("per-layer levels not independent:\n%s", out)
	}
	l.SetAllLevels(slog.LevelError)
	fed.Logf("info squelched")
	fed.Errorf("errors pass")
	out = buf.String()
	if strings.Contains(out, "info squelched") || !strings.Contains(out, "errors pass") {
		t.Fatalf("SetAllLevels broken:\n%s", out)
	}
	if l.Layer("federation") != fed {
		t.Fatal("Layer must return the cached instance")
	}
}

func TestLoggerSessionEnrichment(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf)
	tc := TraceContext{TraceID: 0xabcd, Span: 0x1234}
	l.Layer("hub").Session(42, tc).Logf("stage done")
	out := buf.String()
	for _, want := range []string{"sid=42", "trace_id=000000000000abcd", "span_id=0000000000001234", "layer=hub"} {
		if !strings.Contains(out, want) {
			t.Fatalf("enriched line missing %q:\n%s", want, out)
		}
	}
	buf = syncBuffer{}
	l2 := NewLogger(&buf)
	l2.Layer("hub").Session(7, TraceContext{}).Logf("untraced")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("zero trace context must not add trace attrs:\n%s", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.SetLevel("x", slog.LevelDebug)
	l.SetAllLevels(slog.LevelDebug)
	ll := l.Layer("x")
	if ll != nil {
		t.Fatal("nil logger must hand out nil layers")
	}
	ll.Logf("no panic")
	ll.Debugf("no panic")
	ll.Warnf("no panic")
	ll.Errorf("no panic")
	ll.With("k", "v").Session(1, TraceContext{}).Logf("no panic")
}

func TestDefaultLoggerSingleton(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default must return one process-wide logger")
	}
	// The federation default swaps in Layer("federation").Logf — the
	// signature must keep matching func(string, ...any).
	var logf func(string, ...any) = Default().Layer("federation").Logf
	_ = logf
}
