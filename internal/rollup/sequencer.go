package rollup

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"onoffchain/internal/hybrid"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
	"onoffchain/internal/types"
)

// Config parameterizes a Sequencer.
type Config struct {
	// Party is the funded sequencer identity: it deploys the registry and
	// pays for every epoch post.
	Party *hybrid.Participant
	// Depth fixes the Merkle tree (and proof) depth; an epoch holds at
	// most 2^Depth leaves. Default 8 (256 leaves).
	Depth int
	// EpochCap seals an epoch as soon as it holds this many leaves.
	// Default 2^Depth, clamped to it.
	EpochCap int
	// EpochAge seals a partial epoch this long after its FIRST leaf
	// arrived: the liveness bound that keeps a trickle of sessions from
	// waiting forever for a full batch. Default 250ms.
	EpochAge time.Duration
	// Window is the batch challenge period in chain seconds: leaves can
	// be disputed (opened against the root) until postedAt + Window.
	Window uint64
	// DeployGas / PostGas bound the registry deployment and per-epoch
	// post transactions. Defaults 3_000_000 / 2_000_000.
	DeployGas, PostGas uint64
	// Journal, when set, makes epoch state durable: it receives every
	// rollup record BEFORE the action it describes (the hub passes its
	// WAL journal here, so epochs ride the session log).
	Journal func(*store.Record) error
	// OnEpoch runs after each epoch's post transaction is mined (the hub
	// feeds the watchtower; the federation gossips the epoch to backups).
	OnEpoch func(*Epoch)
	// Telemetry / Tracer are optional observability handles.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	Logf      func(string, ...interface{})
}

// Epoch is one sealed-and-posted batch: everything needed to derive any
// leaf's Merkle proof during the batch challenge window.
type Epoch struct {
	Number   uint64
	Root     types.Hash
	Tree     *Tree
	Leaves   []Leaf
	PostedAt uint64 // chain time the registry recorded
	GasUsed  uint64 // actual gas of the post transaction
}

// Deadline returns the chain time the batch challenge window closes.
func (e *Epoch) Deadline(window uint64) uint64 { return e.PostedAt + window }

// Source hands out posted epochs by number — the seam between whoever
// holds the epoch data (the hub's sequencer, or a federation tower's
// gossip cache) and the watchtower that needs leaves + proofs to guard a
// batch.
type Source interface {
	// EpochByNumber returns the posted epoch, or false while unknown
	// (e.g. a tower that saw the chain event before the gossip arrived).
	EpochByNumber(n uint64) (*Epoch, bool)
}

// ticket is one session's pending leaf: resolved (done closed) when the
// epoch carrying it is posted on chain.
type ticket struct {
	leaf    Leaf
	tc      telemetry.TraceContext
	done    chan struct{}
	epoch   *Epoch // set before done closes
	index   int    // leaf index inside epoch
	err     error
	arrived time.Time
}

// Future is the caller's handle on an enqueued leaf.
type Future struct{ t *ticket }

// Wait blocks until the leaf's epoch posts (returning the epoch and the
// leaf's index in it) or ctx ends.
func (f *Future) Wait(ctx context.Context) (*Epoch, int, error) {
	select {
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-f.t.done:
		return f.t.epoch, f.t.index, f.t.err
	}
}

// ErrHalted rejects enqueues after Stop/Halt and resolves tickets the
// sequencer abandoned mid-flight.
var ErrHalted = errors.New("rollup: sequencer halted")

type seqMetrics struct {
	epochs, leaves, postGas *telemetry.Counter
	hLeaves, hSeconds       *telemetry.Histogram
}

// Sequencer batches finished-session outcomes into epochs and posts one
// rollup transaction per epoch. One goroutine owns the seal/post cycle,
// so posts are serial (at most one in flight) — leaves arriving during a
// post's receipt wait accumulate into the next epoch, which is what makes
// batches form under load without any explicit batching delay.
type Sequencer struct {
	cfg      Config
	registry *Registry

	mu        sync.Mutex
	pending   []*ticket
	bySID     map[uint64]*ticket // every unresolved ticket, for idempotent re-enqueue
	epochs    map[uint64]*Epoch  // posted, by number
	inflight  map[uint64]*Epoch  // sealed, post receipt pending — already visible to Source
	nextEpoch uint64
	sealed    []*sealedState // folded sealed-but-maybe-unposted epochs to reconcile at Start
	halted    bool
	arrivedCh chan struct{} // pulsed when pending goes non-empty

	metrics seqMetrics

	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// sealedState is a folded KindEpochSealed awaiting on-chain
// reconciliation (posted or not?) at Start.
type sealedState struct {
	number uint64
	root   types.Hash
	leaves []Leaf
}

// New builds a sequencer. Call Seed (optionally) then Start.
func New(cfg Config) (*Sequencer, error) {
	if cfg.Party == nil {
		return nil, errors.New("rollup: sequencer needs a funded party")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 8
	}
	if cfg.EpochCap <= 0 || cfg.EpochCap > 1<<cfg.Depth {
		cfg.EpochCap = 1 << cfg.Depth
	}
	if cfg.EpochAge <= 0 {
		cfg.EpochAge = 250 * time.Millisecond
	}
	if cfg.DeployGas == 0 {
		cfg.DeployGas = 3_000_000
	}
	if cfg.PostGas == 0 {
		cfg.PostGas = 2_000_000
	}
	if cfg.Logf == nil {
		cfg.Logf = telemetry.Default().Layer("rollup").Logf
	}
	s := &Sequencer{
		cfg:       cfg,
		bySID:     make(map[uint64]*ticket),
		epochs:    make(map[uint64]*Epoch),
		inflight:  make(map[uint64]*Epoch),
		arrivedCh: make(chan struct{}, 1),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if reg := cfg.Telemetry; reg != nil {
		s.metrics = seqMetrics{
			epochs:   reg.Counter("rollup_epochs_total"),
			leaves:   reg.Counter("rollup_leaves_total"),
			postGas:  reg.Counter("rollup_post_gas_total"),
			hLeaves:  reg.Histogram("rollup_epoch_leaves", telemetry.SizeBuckets()),
			hSeconds: reg.Histogram("rollup_epoch_seconds", telemetry.DurationBuckets()),
		}
	}
	return s, nil
}

// Folded is the sequencer state a WAL record stream folds to; hub.Recover
// feeds it back through Seed so a restarted sequencer resumes exactly
// where the crash left it (modulo what the chain says actually landed).
type Folded struct {
	Registry     types.Address // zero: never deployed
	Window       uint64
	Depth        int
	Pending      map[uint64]Leaf // enqueued, not in any sealed epoch
	Sealed       []*sealedState  // sealed; posted-or-not decided on chain
	PostedThru   uint64          // next epoch number after the highest posted
	postedEpochs map[uint64]*sealedState
}

// Fold extracts rollup sequencer state from a WAL record stream. Records
// of other subsystems are ignored, so the hub can pass its whole replay.
func Fold(recs []*store.Record) *Folded {
	f := &Folded{Pending: map[uint64]Leaf{}, postedEpochs: map[uint64]*sealedState{}}
	sealedBySID := map[uint64]bool{}
	var sealed []*sealedState
	posted := map[uint64]bool{}
	for _, rec := range recs {
		switch rec.Kind {
		case store.KindRollupRegistry:
			f.Registry = types.BytesToAddress(rec.Blob)
			f.Window = rec.U1
			f.Depth = int(rec.U2)
		case store.KindEpochLeaf:
			f.Pending[rec.SID] = Leaf{SID: rec.SID, Contract: types.BytesToAddress(rec.Blob), Outcome: rec.U1}
		case store.KindEpochSealed:
			ss := &sealedState{number: rec.U1, root: types.BytesToHash(rec.Blob)}
			for _, b := range rec.Blobs {
				if l, ok := decodeLeaf(b); ok {
					ss.leaves = append(ss.leaves, l)
					sealedBySID[l.SID] = true
				}
			}
			sealed = append(sealed, ss)
		case store.KindEpochPosted:
			posted[rec.U1] = true
			if rec.U1+1 > f.PostedThru {
				f.PostedThru = rec.U1 + 1
			}
		}
	}
	for sid := range f.Pending {
		if sealedBySID[sid] {
			delete(f.Pending, sid)
		}
	}
	for _, ss := range sealed {
		if posted[ss.number] {
			f.postedEpochs[ss.number] = ss
			continue
		}
		f.Sealed = append(f.Sealed, ss)
	}
	return f
}

// Seed installs folded state. Must run before Start.
func (s *Sequencer) Seed(f *Folded) error {
	if f == nil {
		return nil
	}
	if !f.Registry.IsZero() {
		if f.Depth != s.cfg.Depth {
			return fmt.Errorf("rollup: journaled registry depth %d, configured %d", f.Depth, s.cfg.Depth)
		}
		reg, err := OpenRegistry(f.Registry, f.Depth, f.Window)
		if err != nil {
			return err
		}
		s.registry = reg
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextEpoch = f.PostedThru
	s.sealed = f.Sealed
	// Posted epochs re-enter the in-memory cache so the watchtower's
	// Source keeps serving proofs for still-open batch windows.
	for n, ss := range f.postedEpochs {
		if tree, err := NewTree(s.cfg.Depth, ss.leaves); err == nil {
			s.epochs[n] = &Epoch{Number: n, Root: ss.root, Tree: tree, Leaves: ss.leaves}
		}
	}
	for _, l := range f.Pending {
		s.enqueueLocked(l, telemetry.TraceContext{}, false)
	}
	return nil
}

// Start deploys the registry (or probes the seeded one), reconciles any
// sealed-but-maybe-unposted epochs against the chain — posting exactly
// the ones that never landed — and launches the seal loop.
func (s *Sequencer) Start() error {
	if s.registry == nil {
		reg, err := DeployRegistry(s.cfg.Party, s.cfg.Depth, s.cfg.Party.Addr, s.cfg.Window, s.cfg.DeployGas)
		if err != nil {
			return err
		}
		s.registry = reg
		if err := s.journal(&store.Record{
			Kind: store.KindRollupRegistry, Blob: reg.Addr[:],
			U1: s.cfg.Window, U2: uint64(s.cfg.Depth),
		}); err != nil {
			return err
		}
	}
	// Torn-epoch reconciliation: a KindEpochSealed without KindEpochPosted
	// means the crash hit between seal and receipt. The CHAIN decides
	// whether the post landed — rootOf(n) matching the sealed root means
	// it did (only this sequencer's key can post, so no other writer
	// exists) and re-posting would double-settle the batch; anything else
	// means the epoch never landed and is re-posted now.
	s.mu.Lock()
	sealed := s.sealed
	s.sealed = nil
	s.mu.Unlock()
	for _, ss := range sealed {
		onChain, err := s.registry.RootOf(s.cfg.Party, ss.number)
		if err != nil {
			return fmt.Errorf("rollup: probing sealed epoch %d: %w", ss.number, err)
		}
		tree, err := NewTree(s.cfg.Depth, ss.leaves)
		if err != nil || tree.Root() != ss.root {
			return fmt.Errorf("rollup: sealed epoch %d does not re-fold to its journaled root", ss.number)
		}
		if onChain == ss.root {
			s.cfg.Logf("rollup: sealed epoch %d already on chain, not re-posting", ss.number)
			if err := s.journal(&store.Record{Kind: store.KindEpochPosted, U1: ss.number, Blob: ss.root[:]}); err != nil {
				return err
			}
			s.finishEpoch(ss.number, tree, ss.leaves, 0, time.Time{})
			continue
		}
		s.cfg.Logf("rollup: re-posting torn epoch %d (%d leaves)", ss.number, len(ss.leaves))
		s.mu.Lock()
		s.inflight[ss.number] = &Epoch{Number: ss.number, Root: ss.root, Tree: tree, Leaves: ss.leaves}
		s.mu.Unlock()
		if err := s.post(ss.number, tree, ss.leaves, time.Now()); err != nil {
			return fmt.Errorf("rollup: re-posting epoch %d: %w", ss.number, err)
		}
	}
	s.wg.Add(1)
	go s.loop()
	return nil
}

// Registry exposes the deployed registry handle (nil before Start).
func (s *Sequencer) Registry() *Registry { return s.registry }

// Window returns the batch challenge period.
func (s *Sequencer) Window() uint64 { return s.cfg.Window }

// EpochByNumber implements Source over the sequencer's posted epochs.
// Sealed epochs whose post receipt is still pending are served too: the
// watchtower's block loop can observe the EpochPosted event before the
// sequencer's own receipt wait returns, and it must find the leaves then.
func (s *Sequencer) EpochByNumber(n uint64) (*Epoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.epochs[n]; ok {
		return e, true
	}
	e, ok := s.inflight[n]
	return e, ok
}

// Enqueue registers a finished session's outcome for the next epoch and
// returns a future resolving when its batch posts. Idempotent per SID:
// a recovered session re-enqueueing its leaf gets the live ticket (or,
// if the leaf already posted, an immediately-resolved one).
func (s *Sequencer) Enqueue(leaf Leaf, tc telemetry.TraceContext) (*Future, error) {
	if f, err, settled := s.tryResolve(leaf); settled {
		return f, err
	}
	// Journal OUTSIDE the sequencer lock: the hub's compaction holds the
	// journal lock while collecting StateRecords (journal → sequencer lock
	// order), so journaling under s.mu would invert it. Two racing first
	// enqueues of the same SID may both write KindEpochLeaf; Fold is
	// idempotent per SID, and the loser adopts the winner's ticket below.
	if err := s.journal(&store.Record{
		Kind: store.KindEpochLeaf, SID: leaf.SID,
		U1: leaf.Outcome, Blob: leaf.Contract[:],
	}); err != nil {
		return nil, err
	}
	if f, err, settled := s.tryResolve(leaf); settled {
		return f, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.halted {
		return nil, ErrHalted
	}
	if t := s.bySID[leaf.SID]; t != nil {
		return &Future{t: t}, nil
	}
	t := s.enqueueLocked(leaf, tc, true)
	return &Future{t: t}, nil
}

// tryResolve covers the no-journal-needed cases: halted, an existing live
// ticket for the SID, or a leaf already inside a posted epoch (re-enqueue
// after recovery) which resolves immediately.
func (s *Sequencer) tryResolve(leaf Leaf) (*Future, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.halted {
		return nil, ErrHalted, true
	}
	if t := s.bySID[leaf.SID]; t != nil {
		return &Future{t: t}, nil, true
	}
	for _, e := range s.epochs {
		for i, l := range e.Leaves {
			if l.SID == leaf.SID {
				t := &ticket{leaf: l, done: make(chan struct{}), epoch: e, index: i}
				close(t.done)
				return &Future{t: t}, nil, true
			}
		}
	}
	return nil, nil, false
}

func (s *Sequencer) enqueueLocked(leaf Leaf, tc telemetry.TraceContext, trace bool) *ticket {
	t := &ticket{leaf: leaf, tc: tc, done: make(chan struct{}), arrived: time.Now()}
	s.pending = append(s.pending, t)
	s.bySID[leaf.SID] = t
	if trace && s.cfg.Tracer != nil && tc.Valid() {
		s.cfg.Tracer.EventChild(tc, leaf.SID, "rollup", "leaf_enqueued", "")
	}
	select {
	case s.arrivedCh <- struct{}{}:
	default:
	}
	return t
}

// loop is the seal/post cycle: wait for a first leaf, then seal when the
// cap fills or the age deadline passes — the age timer guarantees a
// partial epoch always posts, so a worker waiting on its leaf's future
// can never deadlock the pipeline it feeds.
func (s *Sequencer) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.arrivedCh:
		}
		// A first leaf is in. Grow the batch until cap or age.
		deadline := time.NewTimer(s.cfg.EpochAge)
		grow := true
		for grow {
			s.mu.Lock()
			full := len(s.pending) >= s.cfg.EpochCap
			s.mu.Unlock()
			if full {
				break
			}
			select {
			case <-s.ctx.Done():
				deadline.Stop()
				return
			case <-deadline.C:
				grow = false
			case <-s.arrivedCh:
			}
		}
		deadline.Stop()
		if err := s.sealAndPost(); err != nil {
			s.cfg.Logf("rollup: epoch post failed: %v", err)
			s.abort(err)
			return
		}
	}
}

// sealAndPost cuts the current batch into an epoch: WAL the sealed epoch
// BEFORE the transaction (tearing recovery's anchor), post, WAL the
// landing, resolve the leaf futures.
func (s *Sequencer) sealAndPost() error {
	s.mu.Lock()
	n := len(s.pending)
	if n == 0 {
		s.mu.Unlock()
		return nil
	}
	if n > s.cfg.EpochCap {
		n = s.cfg.EpochCap
	}
	batch := s.pending[:n:n]
	s.pending = append([]*ticket{}, s.pending[n:]...)
	if len(s.pending) > 0 {
		select {
		case s.arrivedCh <- struct{}{}:
		default:
		}
	}
	number := s.nextEpoch
	s.nextEpoch++
	s.mu.Unlock()

	leaves := make([]Leaf, n)
	blobs := make([][]byte, n)
	first := batch[0].arrived
	for i, t := range batch {
		leaves[i] = t.leaf
		blobs[i] = encodeLeaf(t.leaf)
		if t.arrived.Before(first) {
			first = t.arrived
		}
	}
	tree, err := NewTree(s.cfg.Depth, leaves)
	if err != nil {
		return err
	}
	root := tree.Root()
	if err := s.journal(&store.Record{
		Kind: store.KindEpochSealed, U1: number, U2: uint64(n),
		Blob: root[:], Blobs: blobs,
	}); err != nil {
		return err
	}
	s.mu.Lock()
	s.inflight[number] = &Epoch{Number: number, Root: root, Tree: tree, Leaves: leaves}
	s.mu.Unlock()
	return s.post(number, tree, leaves, first)
}

// post lands one epoch on chain and resolves its tickets.
func (s *Sequencer) post(number uint64, tree *Tree, leaves []Leaf, first time.Time) error {
	start := time.Now()
	rec, err := s.registry.PostEpoch(s.cfg.Party, tree.Root(), uint64(len(leaves)), s.cfg.PostGas)
	if err != nil {
		return err
	}
	root := tree.Root()
	if err := s.journal(&store.Record{Kind: store.KindEpochPosted, U1: number, Blob: root[:]}); err != nil {
		return err
	}
	if s.metrics.epochs != nil {
		s.metrics.epochs.Inc()
		s.metrics.leaves.Add(uint64(len(leaves)))
		s.metrics.postGas.Add(rec.GasUsed)
		s.metrics.hLeaves.Observe(float64(len(leaves)))
		if !first.IsZero() {
			s.metrics.hSeconds.Observe(time.Since(first).Seconds())
		}
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Record(0, "rollup", "post_epoch", start, time.Since(start),
			fmt.Sprintf("epoch=%d leaves=%d gas=%d", number, len(leaves), rec.GasUsed))
	}
	s.finishEpoch(number, tree, leaves, rec.GasUsed, start)
	return nil
}

// finishEpoch records the posted epoch, resolves tickets, and runs the
// OnEpoch hook.
func (s *Sequencer) finishEpoch(number uint64, tree *Tree, leaves []Leaf, gasUsed uint64, start time.Time) {
	postedAt, err := s.registry.PostedAt(s.cfg.Party, number)
	if err != nil {
		s.cfg.Logf("rollup: postedAt(%d) probe failed: %v", number, err)
	}
	e := &Epoch{Number: number, Root: tree.Root(), Tree: tree, Leaves: leaves, PostedAt: postedAt, GasUsed: gasUsed}
	index := make(map[uint64]int, len(leaves))
	for i, l := range leaves {
		index[l.SID] = i
	}
	s.mu.Lock()
	delete(s.inflight, number)
	s.epochs[number] = e
	// Chain time is monotonic, so any cached epoch whose window closed
	// before THIS post's timestamp can no longer be opened — evict it to
	// bound the proof cache (and the compaction snapshot it feeds).
	if w := s.cfg.Window; w > 0 && postedAt > 0 {
		for n, old := range s.epochs {
			if old.PostedAt > 0 && old.PostedAt+w < postedAt {
				delete(s.epochs, n)
			}
		}
	}
	var resolve []*ticket
	for sid, t := range s.bySID {
		if i, ok := index[sid]; ok {
			t.epoch, t.index = e, i
			resolve = append(resolve, t)
			delete(s.bySID, sid)
		}
	}
	s.mu.Unlock()
	for _, t := range resolve {
		if s.cfg.Tracer != nil && t.tc.Valid() {
			s.cfg.Tracer.EventChild(t.tc, t.leaf.SID, "rollup", "leaf_posted", fmt.Sprintf("epoch=%d", number))
		}
		close(t.done)
	}
	if s.cfg.OnEpoch != nil {
		s.cfg.OnEpoch(e)
	}
}

// abort poisons the sequencer: every unresolved ticket fails, later
// enqueues are rejected.
func (s *Sequencer) abort(err error) {
	s.mu.Lock()
	s.halted = true
	var open []*ticket
	for sid, t := range s.bySID {
		t.err = fmt.Errorf("%w: %v", ErrHalted, err)
		open = append(open, t)
		delete(s.bySID, sid)
	}
	s.pending = nil
	s.mu.Unlock()
	for _, t := range open {
		close(t.done)
	}
}

// Stop winds the sequencer down. Pending (unsealed) leaves resolve with
// ErrHalted — on a clean shutdown the hub drains workers first, so there
// are none; on a crash the WAL carries them into the next incarnation.
func (s *Sequencer) Stop() {
	s.cancel()
	s.wg.Wait()
	s.abort(errors.New("stopped"))
}

// Halt simulates the sequencer dying mid-flight: the loop stops, tickets
// stay unresolved (their sessions are crashing too), and the journal is
// left exactly as-is for recovery.
func (s *Sequencer) Halt() {
	s.mu.Lock()
	s.halted = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// StateRecords synthesizes the record stream that re-folds to the
// sequencer's durable state — the hub appends it to compaction snapshots
// so WAL compaction cannot lose epoch state. Posted epochs are carried
// while cached (their batch windows may still be open); the set is
// bounded by epochs-per-challenge-window at steady state because Evict
// drops closed windows.
func (s *Sequencer) StateRecords() []*store.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*store.Record
	if s.registry != nil {
		out = append(out, &store.Record{
			Kind: store.KindRollupRegistry, Blob: s.registry.Addr[:],
			U1: s.cfg.Window, U2: uint64(s.cfg.Depth),
		})
	}
	for _, t := range s.bySID {
		out = append(out, &store.Record{
			Kind: store.KindEpochLeaf, SID: t.leaf.SID,
			U1: t.leaf.Outcome, Blob: t.leaf.Contract[:],
		})
	}
	// In-flight epochs are sealed but their post receipt has not landed:
	// snapshot them WITHOUT a posted record, so a recovery folded from this
	// snapshot re-runs the chain probe exactly as the raw WAL would.
	for _, e := range s.inflight {
		out = append(out, sealedRecord(e))
	}
	for _, e := range s.epochs {
		root := e.Root
		out = append(out, sealedRecord(e),
			&store.Record{Kind: store.KindEpochPosted, U1: e.Number, Blob: root[:]})
	}
	return out
}

// CachedEpochs returns every posted epoch still in the proof cache, in
// epoch order. Recovery feeds these back through the watchtower so batch
// windows that opened before the crash are re-examined with full leaf
// context (epoch number, index, proof) — the per-session RestoreWindow
// path cannot reconstruct that from a KindWindow record alone.
func (s *Sequencer) CachedEpochs() []*Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Epoch, 0, len(s.epochs))
	for _, e := range s.epochs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Evict drops posted epochs numbered below n from the in-memory cache
// (their challenge windows closed; proofs are no longer needed).
func (s *Sequencer) Evict(below uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := range s.epochs {
		if n < below {
			delete(s.epochs, n)
		}
	}
}

func (s *Sequencer) journal(rec *store.Record) error {
	if s.cfg.Journal == nil {
		return nil
	}
	return s.cfg.Journal(rec)
}

func sealedRecord(e *Epoch) *store.Record {
	blobs := make([][]byte, len(e.Leaves))
	for i, l := range e.Leaves {
		blobs[i] = encodeLeaf(l)
	}
	root := e.Root
	return &store.Record{Kind: store.KindEpochSealed, U1: e.Number, U2: uint64(len(e.Leaves)), Blob: root[:], Blobs: blobs}
}

// encodeLeaf packs a leaf as sid(8) ‖ contract(20) ‖ outcome(8).
func encodeLeaf(l Leaf) []byte {
	b := make([]byte, 36)
	putBE64(b[0:8], l.SID)
	copy(b[8:28], l.Contract[:])
	putBE64(b[28:36], l.Outcome)
	return b
}

func decodeLeaf(b []byte) (Leaf, bool) {
	if len(b) != 36 {
		return Leaf{}, false
	}
	return Leaf{
		SID:      be64(b[0:8]),
		Contract: types.BytesToAddress(b[8:28]),
		Outcome:  be64(b[28:36]),
	}, true
}

func putBE64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[7-i] = byte(v >> (8 * i))
	}
}

func be64(b []byte) uint64 {
	v := uint64(0)
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
