package rollup

import (
	"context"
	"sync"
	"testing"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// recordLog is a thread-safe WAL stand-in capturing sequencer records.
type recordLog struct {
	mu   sync.Mutex
	recs []*store.Record
}

func (r *recordLog) log(rec *store.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *rec
	r.recs = append(r.recs, &cp)
	return nil
}

func (r *recordLog) all() []*store.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*store.Record{}, r.recs...)
}

func seqFixture(t *testing.T) (*chain.Chain, *hybrid.Participant) {
	t.Helper()
	key, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x5EC0))
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(key.EthereumAddress()): eth(1000),
	})
	return c, hybrid.NewParticipant(key, c, nil)
}

func newSeq(t *testing.T, party *hybrid.Participant, cfg Config, wal *recordLog) *Sequencer {
	t.Helper()
	cfg.Party = party
	if wal != nil {
		cfg.Journal = wal.log
	}
	if cfg.Window == 0 {
		cfg.Window = 600
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSequencerBatchesLeaves(t *testing.T) {
	_, party := seqFixture(t)
	wal := &recordLog{}
	reg := telemetry.NewRegistry()
	s := newSeq(t, party, Config{Depth: 4, EpochAge: 30 * time.Millisecond, Telemetry: reg}, wal)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	leaves := mkLeaves(10)
	futs := make([]*Future, len(leaves))
	for i, l := range leaves {
		f, err := s.Enqueue(l, telemetry.TraceContext{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := map[uint64]bool{}
	for i, f := range futs {
		e, idx, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if e.Leaves[idx].SID != leaves[i].SID {
			t.Fatalf("leaf %d resolved at wrong index", i)
		}
		proof, err := e.Tree.Proof(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyProof(leaves[i], idx, proof, e.Root) {
			t.Fatalf("leaf %d: epoch proof does not verify", i)
		}
		seen[e.Number] = true
	}
	// All 10 arrived before the first age deadline: they must have been
	// batched into very few epochs (usually one), not one tx per session.
	if len(seen) > 3 {
		t.Fatalf("10 leaves spread over %d epochs — batching is broken", len(seen))
	}
	snap := reg.Snapshot()
	if snap["rollup_leaves_total"] != 10 {
		t.Fatalf("rollup_leaves_total = %v, want 10", snap["rollup_leaves_total"])
	}
	if snap["rollup_epochs_total"] == 0 || snap["rollup_post_gas_total"] == 0 {
		t.Fatalf("epoch/gas series not populated: %v", snap)
	}
	// Idempotent re-enqueue of an already-posted leaf resolves instantly.
	f, err := s.Enqueue(leaves[3], telemetry.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if e, _, err := f.Wait(ctx); err != nil || !seen[e.Number] {
		t.Fatalf("re-enqueue: %v", err)
	}
}

func TestSequencerSealsAtCap(t *testing.T) {
	_, party := seqFixture(t)
	s := newSeq(t, party, Config{Depth: 3, EpochCap: 4, EpochAge: time.Hour}, nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	var futs []*Future
	for _, l := range mkLeaves(8) {
		f, err := s.Enqueue(l, telemetry.TraceContext{})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	epochs := map[uint64]int{}
	for _, f := range futs {
		e, _, err := f.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		epochs[e.Number]++
	}
	// EpochAge is an hour, so only the cap can have sealed: 8 leaves in
	// exactly 2 full epochs of 4.
	if len(epochs) != 2 {
		t.Fatalf("got %d epochs, want 2 (cap-sealed): %v", len(epochs), epochs)
	}
	for n, c := range epochs {
		if c != 4 {
			t.Fatalf("epoch %d has %d leaves, want 4", n, c)
		}
	}
}

// TestSequencerRecoversTornEpoch is the crash-consistency core: a WAL
// that says "sealed" but not "posted" must be reconciled against the
// chain — re-posted when the transaction never landed, NOT re-posted
// when it did (the double-post hazard).
func TestSequencerRecoversTornEpoch(t *testing.T) {
	_, party := seqFixture(t)
	wal := &recordLog{}
	s := newSeq(t, party, Config{Depth: 4, EpochAge: 20 * time.Millisecond}, wal)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	leaves := mkLeaves(3)
	var futs []*Future
	for _, l := range leaves {
		f, _ := s.Enqueue(l, telemetry.TraceContext{})
		futs = append(futs, f)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, f := range futs {
		if _, _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	s.Halt()

	// Case 1 — "posted landed, crash before KindEpochPosted": drop the
	// posted record from the WAL. The recovered sequencer probes the
	// registry, sees epoch 0's root on chain, and must NOT post again.
	var torn []*store.Record
	for _, r := range wal.all() {
		if r.Kind == store.KindEpochPosted {
			continue
		}
		torn = append(torn, r)
	}
	s2 := newSeq(t, party, Config{Depth: 4, EpochAge: 20 * time.Millisecond}, &recordLog{})
	if err := s2.Seed(Fold(torn)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Registry().Epochs(party); err != nil || n != 1 {
		t.Fatalf("after recovery, on-chain epochs = %d (%v), want 1 — double-post!", n, err)
	}
	// The recovered cache still serves the epoch for open batch windows.
	if e, ok := s2.EpochByNumber(0); !ok || len(e.Leaves) != 3 {
		t.Fatal("recovered sequencer lost epoch 0")
	}
	s2.Stop()

	// Case 2 — "crash between seal and post": append a sealed record the
	// chain never saw. Recovery must post exactly it, once.
	extra := mkLeaves(6)[3:]
	tree2, err := NewTree(4, extra)
	if err != nil {
		t.Fatal(err)
	}
	root2 := tree2.Root()
	blobs := make([][]byte, len(extra))
	for i, l := range extra {
		blobs[i] = encodeLeaf(l)
	}
	torn2 := append(wal.all(), &store.Record{
		Kind: store.KindEpochSealed, U1: 1, U2: uint64(len(extra)),
		Blob: root2[:], Blobs: blobs,
	})
	s3 := newSeq(t, party, Config{Depth: 4, EpochAge: 20 * time.Millisecond}, &recordLog{})
	if err := s3.Seed(Fold(torn2)); err != nil {
		t.Fatal(err)
	}
	if err := s3.Start(); err != nil {
		t.Fatal(err)
	}
	defer s3.Stop()
	if n, err := s3.Registry().Epochs(party); err != nil || n != 2 {
		t.Fatalf("torn epoch not re-posted: on-chain epochs = %d (%v), want 2", n, err)
	}
	if root, err := s3.Registry().RootOf(party, 1); err != nil || root != root2 {
		t.Fatalf("re-posted epoch root mismatch: %x", root)
	}
}

// TestSequencerReenqueuesPendingLeaves: leaves enqueued (KindEpochLeaf)
// but never sealed before the crash must flow into the next incarnation's
// first epoch.
func TestSequencerReenqueuesPendingLeaves(t *testing.T) {
	_, party := seqFixture(t)
	// Hand-craft a WAL: registry deployed by a live run, plus two orphan
	// leaves.
	wal := &recordLog{}
	boot := newSeq(t, party, Config{Depth: 4, EpochAge: time.Hour}, wal)
	if err := boot.Start(); err != nil { // deploys + journals the registry
		t.Fatal(err)
	}
	boot.Halt()
	leaves := mkLeaves(2)
	recs := wal.all()
	for _, l := range leaves {
		recs = append(recs, &store.Record{Kind: store.KindEpochLeaf, SID: l.SID, U1: l.Outcome, Blob: l.Contract[:]})
	}
	s := newSeq(t, party, Config{Depth: 4, EpochAge: 20 * time.Millisecond}, &recordLog{})
	if err := s.Seed(Fold(recs)); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// The re-enqueued leaves post without anyone calling Enqueue; their
	// sessions re-attach by enqueueing again and resolve instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := s.Registry().Epochs(party); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pending leaves never posted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f, err := s.Enqueue(leaves[0], telemetry.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if e, idx, err := f.Wait(ctx); err != nil || e.Leaves[idx].SID != leaves[0].SID {
		t.Fatalf("re-attach: %v", err)
	}
}

func TestFoldStateRoundTrip(t *testing.T) {
	_, party := seqFixture(t)
	wal := &recordLog{}
	s := newSeq(t, party, Config{Depth: 4, EpochAge: 20 * time.Millisecond}, wal)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for _, l := range mkLeaves(3) {
		f, _ := s.Enqueue(l, telemetry.TraceContext{})
		futs = append(futs, f)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, f := range futs {
		if _, _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// StateRecords (the compaction snapshot contribution) must fold back
	// to the same durable state as the full WAL.
	fromWAL := Fold(wal.all())
	fromSnap := Fold(s.StateRecords())
	s.Stop()
	if fromWAL.Registry != fromSnap.Registry || fromWAL.PostedThru != fromSnap.PostedThru {
		t.Fatalf("snapshot fold diverges: %+v vs %+v", fromWAL, fromSnap)
	}
	if len(fromSnap.Pending) != 0 || len(fromSnap.Sealed) != 0 {
		t.Fatalf("clean shutdown left pending/sealed state: %+v", fromSnap)
	}
	if len(fromSnap.postedEpochs) != len(fromWAL.postedEpochs) {
		t.Fatalf("posted epochs lost in snapshot: %d vs %d", len(fromSnap.postedEpochs), len(fromWAL.postedEpochs))
	}
	// Eviction drops closed windows from snapshots.
	s.Evict(1000)
	if got := Fold(s.StateRecords()); len(got.postedEpochs) != 0 {
		t.Fatal("evicted epochs still in snapshot")
	}
}

func TestLeafCodec(t *testing.T) {
	for _, l := range mkLeaves(5) {
		got, ok := decodeLeaf(encodeLeaf(l))
		if !ok || got != l {
			t.Fatalf("leaf round-trip: %+v -> %+v", l, got)
		}
	}
	if _, ok := decodeLeaf([]byte{1, 2, 3}); ok {
		t.Fatal("short leaf decoded")
	}
}
