// Package rollup amortizes on-chain settlement cost across many
// sessions: a sequencer collects finished-session outcomes into epochs,
// builds a Merkle root over per-session (sid, contract, outcome) leaves,
// and posts ONE transaction per epoch to a generated rollup-registry
// contract — replacing N individual submit/finalize transactions. The
// challenge window moves to the batch: disputing means opening one leaf
// against the posted root (Merkle proof + the existing signed-copy fraud
// evidence), so watchtowers guard the rollup root instead of per-session
// settlements and the whole dispute stack downstream of the leaf-open is
// unchanged.
package rollup

import (
	"fmt"

	"onoffchain/internal/keccak"
	"onoffchain/internal/types"
)

// Leaf is one settled session inside an epoch: the session, the on-chain
// contract it would otherwise have settled, and the claimed outcome.
type Leaf struct {
	SID      uint64
	Contract types.Address
	Outcome  uint64
}

// Hash is the leaf commitment the registry contract recomputes on a
// leaf-open: keccak256 over three 32-byte words — sid, the contract
// address left-padded to a word, and the outcome. Word-aligned so the
// generated Solo contract can mirror it with a single keccak256(sid,
// uint(who), outcome) over its scalar arguments.
func (l Leaf) Hash() types.Hash {
	var buf [96]byte
	putWord(buf[0:32], l.SID)
	copy(buf[44:64], l.Contract[:])
	putWord(buf[64:96], l.Outcome)
	return types.Hash(keccak.Sum256(buf[:]))
}

func putWord(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[31-i] = byte(v >> (8 * i))
	}
}

// Tree is a fixed-depth binary Merkle tree over an epoch's leaves,
// zero-padded on the right with precomputed empty-subtree hashes, so
// every proof is exactly Depth siblings — which is what lets the
// generated registry contract verify proofs with an unrolled scalar
// argument list (the Solo language has no array parameters).
type Tree struct {
	depth  int
	leaves []Leaf
	// levels[0] = leaf hashes (only the occupied prefix), levels[d] the
	// occupied prefix of level d; absent right siblings are zeroSub[d].
	levels [][]types.Hash
	root   types.Hash
}

// zeroSubtrees returns the empty-subtree hash chain: z[0] is the
// all-zero word (an unoccupied leaf slot — distinct from any real leaf
// hash, which is a keccak output of structured input), z[d+1] =
// keccak(z[d] ‖ z[d]).
func zeroSubtrees(depth int) []types.Hash {
	z := make([]types.Hash, depth+1)
	for d := 0; d < depth; d++ {
		z[d+1] = types.Hash(keccak.Sum256(z[d][:], z[d][:]))
	}
	return z
}

// NewTree builds the tree for one epoch. len(leaves) must be in
// [1, 2^depth].
func NewTree(depth int, leaves []Leaf) (*Tree, error) {
	if depth < 1 || depth > 16 {
		return nil, fmt.Errorf("rollup: tree depth %d out of range [1,16]", depth)
	}
	if len(leaves) == 0 || len(leaves) > 1<<depth {
		return nil, fmt.Errorf("rollup: %d leaves does not fit depth-%d tree", len(leaves), depth)
	}
	zero := zeroSubtrees(depth)
	t := &Tree{depth: depth, leaves: leaves, levels: make([][]types.Hash, depth+1)}
	level := make([]types.Hash, len(leaves))
	for i, l := range leaves {
		level[i] = l.Hash()
	}
	t.levels[0] = level
	for d := 0; d < depth; d++ {
		next := make([]types.Hash, (len(level)+1)/2)
		for i := range next {
			left := level[2*i]
			right := zero[d]
			if 2*i+1 < len(level) {
				right = level[2*i+1]
			}
			next[i] = types.Hash(keccak.Sum256(left[:], right[:]))
		}
		t.levels[d+1] = next
		level = next
	}
	t.root = level[0]
	return t, nil
}

// Root returns the epoch commitment posted on chain.
func (t *Tree) Root() types.Hash { return t.root }

// Depth returns the fixed proof length.
func (t *Tree) Depth() int { return t.depth }

// Leaves returns the tree's leaves in index order.
func (t *Tree) Leaves() []Leaf { return t.leaves }

// Proof returns the Merkle proof for leaf index i: exactly Depth sibling
// hashes, leaf level first.
func (t *Tree) Proof(i int) ([]types.Hash, error) {
	if i < 0 || i >= len(t.leaves) {
		return nil, fmt.Errorf("rollup: proof index %d out of range [0,%d)", i, len(t.leaves))
	}
	zero := zeroSubtrees(t.depth)
	proof := make([]types.Hash, t.depth)
	idx := i
	for d := 0; d < t.depth; d++ {
		sib := idx ^ 1
		if sib < len(t.levels[d]) {
			proof[d] = t.levels[d][sib]
		} else {
			proof[d] = zero[d]
		}
		idx >>= 1
	}
	return proof, nil
}

// VerifyProof folds a leaf and its proof back to a root — the exact
// computation the generated registry contract performs on openLeaf.
// Standalone so federation towers can check a gossiped epoch's
// consistency without rebuilding the full tree.
func VerifyProof(leaf Leaf, index int, proof []types.Hash, root types.Hash) bool {
	h := leaf.Hash()
	idx := index
	for _, sib := range proof {
		if idx&1 == 1 {
			h = types.Hash(keccak.Sum256(sib[:], h[:]))
		} else {
			h = types.Hash(keccak.Sum256(h[:], sib[:]))
		}
		idx >>= 1
	}
	return idx == 0 && h == root
}
