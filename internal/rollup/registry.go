package rollup

import (
	"fmt"
	"strings"
	"sync"

	"onoffchain/internal/abi"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/lang"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// Topic hashes of the registry's lifecycle events. Watchtowers filter on
// EpochPosted the way they filter on per-session ResultSubmitted.
var (
	TopicEpochPosted = abi.EventTopic("EpochPosted(uint256,bytes32,uint256)")
	TopicLeafOpened  = abi.EventTopic("LeafOpened(uint256,uint256,address,uint256)")
)

// registrySource generates the rollup-registry contract for a fixed tree
// depth. The Solo language has no array parameters, so openLeaf takes the
// proof as depth scalar bytes32 arguments and the fold is unrolled — the
// same shape the hybrid splitter uses for n-of-n signature parameters.
func registrySource(depth int) string {
	var b strings.Builder
	b.WriteString(`contract RollupRegistry {
    address sequencer;
    uint window;
    uint epochCount;
    mapping(uint => bytes32) roots;
    mapping(uint => uint) postedAts;
    mapping(uint => uint) leafCounts;
    mapping(bytes32 => bool) openedLeaves;

    event EpochPosted(uint epoch, bytes32 root, uint count);
    event LeafOpened(uint epoch, uint sid, address leafContract, uint outcome);

    constructor(address seq, uint challengeWindow) {
        sequencer = seq;
        window = challengeWindow;
    }

    function postEpoch(bytes32 root, uint count) public {
        require(msg.sender == sequencer);
        require(count > 0);
        uint e = epochCount;
        epochCount = e + 1;
        roots[e] = root;
        postedAts[e] = block.timestamp;
        leafCounts[e] = count;
        emit EpochPosted(e, root, count);
    }

`)
	// openLeaf proves (sid, who, outcome) sits at index under the epoch's
	// root, within the batch challenge window, at most once per leaf. It
	// carries no enforcement itself: the opener still wins the dispute
	// through the session contract's deployVerifiedInstance path — this
	// call pins WHICH leaf of WHICH batch that dispute refutes.
	b.WriteString("    function openLeaf(uint epoch, uint sid, address who, uint outcome, uint index")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, ", bytes32 s%d", i)
	}
	b.WriteString(`) public {
        require(postedAts[epoch] != 0);
        require(block.timestamp <= postedAts[epoch] + window);
        bytes32 h = keccak256(sid, uint(who), outcome);
        uint idx = index;
`)
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, `        if (idx %% 2 == 1) { h = keccak256(s%d, h); } else { h = keccak256(h, s%d); }
        idx = idx / 2;
`, i, i)
	}
	b.WriteString(`        require(idx == 0);
        require(h == roots[epoch]);
        bytes32 k = keccak256(epoch, sid, uint(who));
        require(!openedLeaves[k]);
        openedLeaves[k] = true;
        emit LeafOpened(epoch, sid, who, outcome);
    }

    function epochs() public view returns (uint) {
        return epochCount;
    }

    function rootOf(uint epoch) public view returns (bytes32) {
        return roots[epoch];
    }

    function postedAt(uint epoch) public view returns (uint) {
        return postedAts[epoch];
    }

    function leafCount(uint epoch) public view returns (uint) {
        return leafCounts[epoch];
    }

    function isOpened(uint epoch, uint sid, address who) public view returns (bool) {
        return openedLeaves[keccak256(epoch, sid, uint(who))];
    }
}
`)
	return b.String()
}

var (
	registryMu    sync.Mutex
	registryCache = map[int]*lang.CompiledContract{}
)

// CompiledRegistry compiles (once per depth) the generated registry.
func CompiledRegistry(depth int) (*lang.CompiledContract, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if cc := registryCache[depth]; cc != nil {
		return cc, nil
	}
	c, err := lang.Compile(registrySource(depth))
	if err != nil {
		return nil, fmt.Errorf("rollup: registry compile: %w", err)
	}
	cc := c.Contracts["RollupRegistry"]
	if cc == nil {
		return nil, fmt.Errorf("rollup: registry contract missing from compile output")
	}
	registryCache[depth] = cc
	return cc, nil
}

// Registry is a client handle on one deployed rollup-registry instance.
type Registry struct {
	CC     *lang.CompiledContract
	Addr   types.Address
	Depth  int
	Window uint64 // batch challenge window, seconds of chain time
}

// DeployRegistry deploys a fresh registry naming sequencer as the only
// address allowed to post epochs.
func DeployRegistry(p *hybrid.Participant, depth int, sequencer types.Address, window, gas uint64) (*Registry, error) {
	cc, err := CompiledRegistry(depth)
	if err != nil {
		return nil, err
	}
	code, err := cc.DeployWithArgs(sequencer, window)
	if err != nil {
		return nil, err
	}
	addr, _, err := p.Deploy(code, nil, gas)
	if err != nil {
		return nil, fmt.Errorf("rollup: registry deploy: %w", err)
	}
	return &Registry{CC: cc, Addr: addr, Depth: depth, Window: window}, nil
}

// OpenRegistry re-attaches to an already-deployed registry (recovery,
// federation towers learning the address from gossip).
func OpenRegistry(addr types.Address, depth int, window uint64) (*Registry, error) {
	cc, err := CompiledRegistry(depth)
	if err != nil {
		return nil, err
	}
	return &Registry{CC: cc, Addr: addr, Depth: depth, Window: window}, nil
}

// PostEpoch submits one epoch's root. The receipt reports the actual gas
// the batch settlement cost.
func (r *Registry) PostEpoch(p *hybrid.Participant, root types.Hash, count uint64, gas uint64) (*types.Receipt, error) {
	rec, err := p.Invoke(r.CC, r.Addr, nil, gas, "postEpoch", root, count)
	if err != nil {
		return nil, err
	}
	if !rec.Succeeded() {
		return rec, fmt.Errorf("rollup: postEpoch reverted")
	}
	return rec, nil
}

// OpenLeaf pins a disputed leaf against its epoch's posted root. A revert
// is expected when the leaf was already opened (the on-chain exactly-once
// veto) or the proof does not reach the root.
func (r *Registry) OpenLeaf(p *hybrid.Participant, epoch uint64, leaf Leaf, index int, proof []types.Hash, gas uint64) (*types.Receipt, error) {
	if len(proof) != r.Depth {
		return nil, fmt.Errorf("rollup: proof has %d siblings, registry depth is %d", len(proof), r.Depth)
	}
	args := make([]interface{}, 0, 5+r.Depth)
	args = append(args, epoch, leaf.SID, leaf.Contract, leaf.Outcome, uint64(index))
	for _, s := range proof {
		args = append(args, s)
	}
	return p.Invoke(r.CC, r.Addr, nil, gas, "openLeaf", args...)
}

// Epochs returns the number of posted epochs.
func (r *Registry) Epochs(p *hybrid.Participant) (uint64, error) {
	return r.queryUint(p, "epochs")
}

// PostedAt returns the chain time epoch was posted (0 = never posted) —
// the probe recovery uses to decide whether a WAL-sealed epoch needs
// re-posting.
func (r *Registry) PostedAt(p *hybrid.Participant, epoch uint64) (uint64, error) {
	return r.queryUint(p, "postedAt", epoch)
}

// LeafCount returns the number of leaves committed under epoch's root.
func (r *Registry) LeafCount(p *hybrid.Participant, epoch uint64) (uint64, error) {
	return r.queryUint(p, "leafCount", epoch)
}

// RootOf returns the posted root for epoch.
func (r *Registry) RootOf(p *hybrid.Participant, epoch uint64) (types.Hash, error) {
	v, err := p.Query(r.CC, r.Addr, "rootOf", epoch)
	if err != nil {
		return types.Hash{}, err
	}
	h, ok := v.(types.Hash)
	if !ok {
		return types.Hash{}, fmt.Errorf("rollup: rootOf returned %T", v)
	}
	return h, nil
}

// IsOpened reports whether the leaf (epoch, sid, who) was already opened.
func (r *Registry) IsOpened(p *hybrid.Participant, epoch, sid uint64, who types.Address) (bool, error) {
	v, err := p.Query(r.CC, r.Addr, "isOpened", epoch, sid, who)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("rollup: isOpened returned %T", v)
	}
	return b, nil
}

func (r *Registry) queryUint(p *hybrid.Participant, fn string, args ...interface{}) (uint64, error) {
	v, err := p.Query(r.CC, r.Addr, fn, args...)
	if err != nil {
		return 0, err
	}
	u, ok := v.(*uint256.Int)
	if !ok || !u.IsUint64() {
		return 0, fmt.Errorf("rollup: %s returned %T", fn, v)
	}
	return u.Uint64(), nil
}

// EpochPostedEvent is the decoded form of an EpochPosted log.
type EpochPostedEvent struct {
	Registry types.Address
	Epoch    uint64
	Root     types.Hash
	Count    uint64
}

// DecodeEpochPosted parses a log known to carry TopicEpochPosted.
func DecodeEpochPosted(l *types.Log) (*EpochPostedEvent, error) {
	if len(l.Topics) == 0 || l.Topics[0] != TopicEpochPosted || len(l.Data) < 96 {
		return nil, fmt.Errorf("rollup: not an EpochPosted log")
	}
	epoch := new(uint256.Int).SetBytes(l.Data[0:32])
	count := new(uint256.Int).SetBytes(l.Data[64:96])
	if !epoch.IsUint64() || !count.IsUint64() {
		return nil, fmt.Errorf("rollup: EpochPosted fields overflow uint64")
	}
	return &EpochPostedEvent{
		Registry: l.Address,
		Epoch:    epoch.Uint64(),
		Root:     types.BytesToHash(l.Data[32:64]),
		Count:    count.Uint64(),
	}, nil
}
