package rollup

import (
	"testing"

	"onoffchain/internal/types"
)

func mkLeaves(n int) []Leaf {
	out := make([]Leaf, n)
	for i := range out {
		var a types.Address
		a[0] = 0xAA
		a[19] = byte(i + 1)
		out[i] = Leaf{SID: uint64(i + 1), Contract: a, Outcome: uint64(i % 2)}
	}
	return out
}

func TestTreeProofsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100, 256} {
		tree, err := NewTree(8, mkLeaves(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, l := range tree.Leaves() {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d proof(%d): %v", n, i, err)
			}
			if len(proof) != 8 {
				t.Fatalf("n=%d: proof length %d, want 8", n, len(proof))
			}
			if !VerifyProof(l, i, proof, tree.Root()) {
				t.Fatalf("n=%d: proof %d does not verify", n, i)
			}
		}
	}
}

func TestProofRejectsTampering(t *testing.T) {
	leaves := mkLeaves(5)
	tree, err := NewTree(4, leaves)
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := tree.Proof(2)
	// Wrong outcome in an otherwise-valid leaf: the lie the dispute path
	// must be able to refute.
	lie := leaves[2]
	lie.Outcome = 1 - lie.Outcome
	if VerifyProof(lie, 2, proof, tree.Root()) {
		t.Fatal("tampered outcome verified")
	}
	// Wrong index.
	if VerifyProof(leaves[2], 3, proof, tree.Root()) {
		t.Fatal("wrong index verified")
	}
	// Proof against a different tree's root (the stale-root case).
	other, _ := NewTree(4, mkLeaves(6))
	if VerifyProof(leaves[2], 2, proof, other.Root()) {
		t.Fatal("stale root verified")
	}
	// Out-of-range index folds past the root.
	if VerifyProof(leaves[2], 2+(1<<4), proof, tree.Root()) {
		t.Fatal("out-of-range index verified")
	}
}

func TestTreeDeterminism(t *testing.T) {
	a, _ := NewTree(6, mkLeaves(33))
	b, _ := NewTree(6, mkLeaves(33))
	if a.Root() != b.Root() {
		t.Fatal("same leaves, different roots")
	}
	c, _ := NewTree(6, mkLeaves(34))
	if a.Root() == c.Root() {
		t.Fatal("different leaves, same root")
	}
}

func TestTreeBounds(t *testing.T) {
	if _, err := NewTree(3, mkLeaves(9)); err == nil {
		t.Fatal("9 leaves fit depth-3 tree")
	}
	if _, err := NewTree(3, nil); err == nil {
		t.Fatal("empty tree built")
	}
	if _, err := NewTree(0, mkLeaves(1)); err == nil {
		t.Fatal("depth-0 tree built")
	}
	tree, err := NewTree(3, mkLeaves(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Proof(8); err == nil {
		t.Fatal("proof past leaf count")
	}
}
