package rollup

import (
	"testing"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

func newParty(t *testing.T, scalar uint64, c *chain.Chain) *hybrid.Participant {
	t.Helper()
	key, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(scalar))
	if err != nil {
		t.Fatal(err)
	}
	return hybrid.NewParticipant(key, c, nil)
}

// registryFixture deploys a depth-4 registry with seq as sequencer.
func registryFixture(t *testing.T, window uint64) (*chain.Chain, *hybrid.Participant, *hybrid.Participant, *Registry) {
	t.Helper()
	keySeq, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x5EC))
	keyOther, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x07E6))
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(keySeq.EthereumAddress()):   eth(100),
		types.Address(keyOther.EthereumAddress()): eth(100),
	})
	seq := hybrid.NewParticipant(keySeq, c, nil)
	other := hybrid.NewParticipant(keyOther, c, nil)
	reg, err := DeployRegistry(seq, 4, seq.Addr, window, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return c, seq, other, reg
}

func TestRegistryPostAndOpen(t *testing.T) {
	_, seq, other, reg := registryFixture(t, 600)

	leaves := mkLeaves(5)
	tree, err := NewTree(4, leaves)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := reg.PostEpoch(seq, tree.Root(), uint64(len(leaves)), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GasUsed == 0 {
		t.Fatal("postEpoch gas not accounted")
	}
	if n, err := reg.Epochs(seq); err != nil || n != 1 {
		t.Fatalf("epochs = %d, %v", n, err)
	}
	if root, err := reg.RootOf(seq, 0); err != nil || root != tree.Root() {
		t.Fatalf("rootOf = %x, %v", root, err)
	}
	if at, err := reg.PostedAt(seq, 0); err != nil || at == 0 {
		t.Fatalf("postedAt = %d, %v", at, err)
	}
	if n, err := reg.LeafCount(seq, 0); err != nil || n != 5 {
		t.Fatalf("leafCount = %d, %v", n, err)
	}

	// Anyone (not just the sequencer) can open a committed leaf within
	// the window — the honest party files the dispute.
	proof, _ := tree.Proof(3)
	r, err := reg.OpenLeaf(other, 0, leaves[3], 3, proof, 500_000)
	if err != nil || !r.Succeeded() {
		t.Fatalf("openLeaf: %v (receipt %+v)", err, r)
	}
	opened, err := reg.IsOpened(other, 0, leaves[3].SID, leaves[3].Contract)
	if err != nil || !opened {
		t.Fatalf("isOpened = %v, %v", opened, err)
	}
	if got := len(r.Logs); got != 1 {
		t.Fatalf("openLeaf emitted %d logs", got)
	}
	if r.Logs[0].Topics[0] != TopicLeafOpened {
		t.Fatal("wrong topic on LeafOpened")
	}
}

func TestRegistryRejectsFraudulentOpens(t *testing.T) {
	c, seq, other, reg := registryFixture(t, 600)

	leaves := mkLeaves(6)
	tree, _ := NewTree(4, leaves)
	if _, err := reg.PostEpoch(seq, tree.Root(), 6, 500_000); err != nil {
		t.Fatal(err)
	}

	proof, _ := tree.Proof(1)

	// A leaf with a lied-about outcome must not open: the proof will not
	// fold back to the root.
	lie := leaves[1]
	lie.Outcome = 1 - lie.Outcome
	if r, err := reg.OpenLeaf(other, 0, lie, 1, proof, 500_000); err == nil && r.Succeeded() {
		t.Fatal("lied outcome opened against the root")
	}

	// Unposted epoch.
	if r, err := reg.OpenLeaf(other, 7, leaves[1], 1, proof, 500_000); err == nil && r.Succeeded() {
		t.Fatal("open against unposted epoch succeeded")
	}

	// Honest open succeeds once…
	if r, err := reg.OpenLeaf(other, 0, leaves[1], 1, proof, 500_000); err != nil || !r.Succeeded() {
		t.Fatalf("honest open: %v", err)
	}
	// …and the second open of the SAME leaf reverts: the on-chain
	// exactly-once veto for batched disputes.
	if r, err := reg.OpenLeaf(seq, 0, leaves[1], 1, proof, 500_000); err == nil && r.Succeeded() {
		t.Fatal("double open succeeded")
	}

	// Stale root: a proof computed against a DIFFERENT epoch's tree must
	// not open a leaf of this one.
	tree2, _ := NewTree(4, mkLeaves(9))
	if _, err := reg.PostEpoch(seq, tree2.Root(), 9, 500_000); err != nil {
		t.Fatal(err)
	}
	staleProof, _ := tree.Proof(2) // epoch-0 proof…
	if r, err := reg.OpenLeaf(other, 1, leaves[2], 2, staleProof, 500_000); err == nil && r.Succeeded() {
		t.Fatal("stale-root proof opened a leaf of epoch 1")
	}

	// Window expiry: past the batch challenge window the leaf can no
	// longer be opened (mirror of per-session finalize semantics).
	c.AdvanceTime(700)
	p2, _ := tree2.Proof(0)
	nine := mkLeaves(9)
	if r, err := reg.OpenLeaf(other, 1, nine[0], 0, p2, 500_000); err == nil && r.Succeeded() {
		t.Fatal("open succeeded after window expiry")
	}
}

func TestRegistryOnlySequencerPosts(t *testing.T) {
	_, _, other, reg := registryFixture(t, 600)
	tree, _ := NewTree(4, mkLeaves(2))
	if r, err := reg.PostEpoch(other, tree.Root(), 2, 500_000); err == nil && r.Succeeded() {
		t.Fatal("non-sequencer posted an epoch")
	}
}
