// Package abi implements the Solidity contract ABI: 4-byte function
// selectors, head/tail argument encoding, return-value decoding and event
// topics, for the types the system uses (uint8..uint256, address, bool,
// bytes32, dynamic bytes and string).
package abi

import (
	"errors"
	"fmt"
	"strings"

	"onoffchain/internal/keccak"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// Type is an ABI type kind.
type Type int

// Supported ABI types.
const (
	Uint256 Type = iota // also covers uint8..uint248 (one padded word)
	Address
	Bool
	Bytes32
	Bytes  // dynamic
	String // dynamic
)

// String returns the canonical Solidity name.
func (t Type) String() string {
	switch t {
	case Uint256:
		return "uint256"
	case Address:
		return "address"
	case Bool:
		return "bool"
	case Bytes32:
		return "bytes32"
	case Bytes:
		return "bytes"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType resolves a Solidity type name.
func ParseType(name string) (Type, error) {
	switch {
	case name == "address":
		return Address, nil
	case name == "bool":
		return Bool, nil
	case name == "bytes32":
		return Bytes32, nil
	case name == "bytes":
		return Bytes, nil
	case name == "string":
		return String, nil
	case strings.HasPrefix(name, "uint"):
		return Uint256, nil
	default:
		return 0, fmt.Errorf("abi: unsupported type %q", name)
	}
}

// IsDynamic reports whether the type uses tail encoding.
func (t Type) IsDynamic() bool { return t == Bytes || t == String }

// Method describes a callable function.
type Method struct {
	Name    string
	Inputs  []Type
	Outputs []Type
	// RawNames preserves the exact type names for the selector signature
	// (uint8 vs uint256 changes the selector).
	RawNames []string
}

// NewMethod builds a method from Solidity type names, e.g.
// NewMethod("deployVerifiedInstance", []string{"bytes","uint8","bytes32",...}, []string{}).
func NewMethod(name string, inputs, outputs []string) (*Method, error) {
	m := &Method{Name: name, RawNames: inputs}
	for _, in := range inputs {
		t, err := ParseType(in)
		if err != nil {
			return nil, err
		}
		m.Inputs = append(m.Inputs, t)
	}
	for _, out := range outputs {
		t, err := ParseType(out)
		if err != nil {
			return nil, err
		}
		m.Outputs = append(m.Outputs, t)
	}
	return m, nil
}

// MustMethod is NewMethod that panics on error (for static tables).
func MustMethod(name string, inputs, outputs []string) *Method {
	m, err := NewMethod(name, inputs, outputs)
	if err != nil {
		panic(err)
	}
	return m
}

// Signature returns the canonical signature, e.g. "transfer(address,uint256)".
func (m *Method) Signature() string {
	return m.Name + "(" + strings.Join(m.RawNames, ",") + ")"
}

// SelectorOf computes the 4-byte selector of an explicit signature string.
func SelectorOf(signature string) [4]byte {
	h := keccak.Sum256([]byte(signature))
	var sel [4]byte
	copy(sel[:], h[:4])
	return sel
}

// Selector returns the method's 4-byte selector.
func (m *Method) Selector() [4]byte { return SelectorOf(m.Signature()) }

// EventTopic returns the topic0 hash for an event signature.
func EventTopic(signature string) types.Hash {
	return types.Hash(keccak.Sum256([]byte(signature)))
}

// Pack encodes a call: selector followed by ABI-encoded arguments.
func (m *Method) Pack(args ...interface{}) ([]byte, error) {
	if len(args) != len(m.Inputs) {
		return nil, fmt.Errorf("abi: %s expects %d args, got %d", m.Name, len(m.Inputs), len(args))
	}
	body, err := EncodeValues(m.Inputs, args)
	if err != nil {
		return nil, fmt.Errorf("abi: pack %s: %w", m.Name, err)
	}
	sel := m.Selector()
	return append(sel[:], body...), nil
}

// Unpack decodes return data according to the method's outputs.
func (m *Method) Unpack(data []byte) ([]interface{}, error) {
	return DecodeValues(m.Outputs, data)
}

// EncodeValues ABI-encodes a tuple using head/tail encoding.
func EncodeValues(typs []Type, args []interface{}) ([]byte, error) {
	if len(typs) != len(args) {
		return nil, errors.New("abi: type/arg count mismatch")
	}
	headSize := 32 * len(typs)
	head := make([]byte, 0, headSize)
	var tail []byte
	for i, t := range typs {
		if t.IsDynamic() {
			offset := uint256.NewInt(uint64(headSize + len(tail)))
			w := offset.Bytes32()
			head = append(head, w[:]...)
			enc, err := encodeDynamic(t, args[i])
			if err != nil {
				return nil, err
			}
			tail = append(tail, enc...)
		} else {
			w, err := encodeStatic(t, args[i])
			if err != nil {
				return nil, err
			}
			head = append(head, w[:]...)
		}
	}
	return append(head, tail...), nil
}

func encodeStatic(t Type, v interface{}) ([32]byte, error) {
	var w [32]byte
	switch t {
	case Uint256:
		switch x := v.(type) {
		case *uint256.Int:
			w = x.Bytes32()
		case uint256.Int:
			w = x.Bytes32()
		case uint64:
			w = uint256.NewInt(x).Bytes32()
		case int:
			if x < 0 {
				return w, errors.New("abi: negative int for uint")
			}
			w = uint256.NewInt(uint64(x)).Bytes32()
		case byte:
			w = uint256.NewInt(uint64(x)).Bytes32()
		default:
			return w, fmt.Errorf("abi: cannot encode %T as uint256", v)
		}
	case Address:
		switch x := v.(type) {
		case types.Address:
			copy(w[12:], x.Bytes())
		case [20]byte:
			copy(w[12:], x[:])
		default:
			return w, fmt.Errorf("abi: cannot encode %T as address", v)
		}
	case Bool:
		x, ok := v.(bool)
		if !ok {
			return w, fmt.Errorf("abi: cannot encode %T as bool", v)
		}
		if x {
			w[31] = 1
		}
	case Bytes32:
		switch x := v.(type) {
		case types.Hash:
			copy(w[:], x.Bytes())
		case [32]byte:
			copy(w[:], x[:])
		case []byte:
			if len(x) > 32 {
				return w, errors.New("abi: bytes32 overflow")
			}
			copy(w[:], x) // left-aligned like Solidity fixed bytes
		default:
			return w, fmt.Errorf("abi: cannot encode %T as bytes32", v)
		}
	default:
		return w, fmt.Errorf("abi: %s is not a static type", t)
	}
	return w, nil
}

func encodeDynamic(t Type, v interface{}) ([]byte, error) {
	var payload []byte
	switch t {
	case Bytes:
		x, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("abi: cannot encode %T as bytes", v)
		}
		payload = x
	case String:
		x, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("abi: cannot encode %T as string", v)
		}
		payload = []byte(x)
	default:
		return nil, fmt.Errorf("abi: %s is not a dynamic type", t)
	}
	lenWord := uint256.NewInt(uint64(len(payload))).Bytes32()
	out := append([]byte{}, lenWord[:]...)
	out = append(out, payload...)
	if pad := len(payload) % 32; pad != 0 {
		out = append(out, make([]byte, 32-pad)...)
	}
	return out, nil
}

// DecodeValues decodes an ABI-encoded tuple.
func DecodeValues(typs []Type, data []byte) ([]interface{}, error) {
	out := make([]interface{}, 0, len(typs))
	for i, t := range typs {
		headOff := 32 * i
		if headOff+32 > len(data) {
			return nil, errors.New("abi: data too short")
		}
		word := data[headOff : headOff+32]
		if t.IsDynamic() {
			off := new(uint256.Int).SetBytes(word)
			if !off.IsUint64() || off.Uint64()+32 > uint64(len(data)) {
				return nil, errors.New("abi: bad dynamic offset")
			}
			o := off.Uint64()
			length := new(uint256.Int).SetBytes(data[o : o+32])
			if !length.IsUint64() || o+32+length.Uint64() > uint64(len(data)) {
				return nil, errors.New("abi: bad dynamic length")
			}
			payload := data[o+32 : o+32+length.Uint64()]
			if t == String {
				out = append(out, string(payload))
			} else {
				out = append(out, append([]byte{}, payload...))
			}
			continue
		}
		switch t {
		case Uint256:
			out = append(out, new(uint256.Int).SetBytes(word))
		case Address:
			out = append(out, types.BytesToAddress(word[12:]))
		case Bool:
			out = append(out, word[31] != 0)
		case Bytes32:
			out = append(out, types.BytesToHash(word))
		}
	}
	return out, nil
}
