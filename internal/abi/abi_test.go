package abi

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// The canonical Solidity selector everyone knows.
func TestKnownSelectors(t *testing.T) {
	sel := SelectorOf("transfer(address,uint256)")
	if got := hex.EncodeToString(sel[:]); got != "a9059cbb" {
		t.Errorf("transfer selector = %s", got)
	}
	sel = SelectorOf("balanceOf(address)")
	if got := hex.EncodeToString(sel[:]); got != "70a08231" {
		t.Errorf("balanceOf selector = %s", got)
	}
	// The ERC-20 Transfer event topic.
	want := "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
	if got := hex.EncodeToString(EventTopic("Transfer(address,address,uint256)").Bytes()); got != want {
		t.Errorf("Transfer topic = %s", got)
	}
}

func TestMethodSignatureUsesRawNames(t *testing.T) {
	m := MustMethod("deployVerifiedInstance",
		[]string{"bytes", "uint8", "bytes32", "bytes32", "uint8", "bytes32", "bytes32"}, nil)
	want := "deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)"
	if m.Signature() != want {
		t.Errorf("signature = %s", m.Signature())
	}
	// uint8 vs uint256 must change the selector.
	m2 := MustMethod("f", []string{"uint8"}, nil)
	m3 := MustMethod("f", []string{"uint256"}, nil)
	if m2.Selector() == m3.Selector() {
		t.Error("uint8 and uint256 selectors collide")
	}
}

func TestStaticEncoding(t *testing.T) {
	m := MustMethod("g", []string{"uint256", "address", "bool", "bytes32"}, nil)
	addr := types.BytesToAddress([]byte{0xAA})
	h := types.BytesToHash([]byte{0xBB})
	data, err := m.Pack(uint256.NewInt(300), addr, true, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+4*32 {
		t.Fatalf("packed length %d", len(data))
	}
	if got := new(uint256.Int).SetBytes(data[4:36]); got.Uint64() != 300 {
		t.Errorf("arg0 = %s", got)
	}
	if !bytes.Equal(data[36+12:68], addr.Bytes()) {
		t.Errorf("arg1 = %x", data[36:68])
	}
	if data[99] != 1 {
		t.Error("bool not encoded")
	}
	if !bytes.Equal(data[100:132], h.Bytes()) {
		t.Error("bytes32 mismatch")
	}
}

func TestDynamicEncoding(t *testing.T) {
	m := MustMethod("h", []string{"bytes", "uint256"}, nil)
	payload := []byte("hello world, this payload is longer than one word!")
	data, err := m.Pack(payload, uint64(7))
	if err != nil {
		t.Fatal(err)
	}
	body := data[4:]
	// Head: [offset=64][7]; tail at 64: [len][payload padded]
	off := new(uint256.Int).SetBytes(body[0:32])
	if off.Uint64() != 64 {
		t.Errorf("offset = %s", off)
	}
	length := new(uint256.Int).SetBytes(body[64:96])
	if length.Uint64() != uint64(len(payload)) {
		t.Errorf("length = %s", length)
	}
	if !bytes.Equal(body[96:96+len(payload)], payload) {
		t.Error("payload mismatch")
	}
	if len(body)%32 != 0 {
		t.Error("body not word aligned")
	}
}

func TestRoundTrip(t *testing.T) {
	typs := []Type{Uint256, Bool, Bytes, Address, String, Bytes32}
	f := func(vRaw uint64, b bool, blob []byte, addrRaw [20]byte, s string, hRaw [32]byte) bool {
		args := []interface{}{
			uint256.NewInt(vRaw), b, blob, types.Address(addrRaw), s, types.Hash(hRaw),
		}
		enc, err := EncodeValues(typs, args)
		if err != nil {
			return false
		}
		dec, err := DecodeValues(typs, enc)
		if err != nil {
			return false
		}
		return dec[0].(*uint256.Int).Uint64() == vRaw &&
			dec[1].(bool) == b &&
			bytes.Equal(dec[2].([]byte), blob) &&
			dec[3].(types.Address) == types.Address(addrRaw) &&
			dec[4].(string) == s &&
			dec[5].(types.Hash) == types.Hash(hRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackArgCountMismatch(t *testing.T) {
	m := MustMethod("f", []string{"uint256"}, nil)
	if _, err := m.Pack(); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := m.Pack(uint64(1), uint64(2)); err == nil {
		t.Error("extra arg accepted")
	}
}

func TestPackTypeMismatch(t *testing.T) {
	m := MustMethod("f", []string{"address"}, nil)
	if _, err := m.Pack("not an address"); err == nil {
		t.Error("string accepted as address")
	}
	m2 := MustMethod("g", []string{"bytes"}, nil)
	if _, err := m2.Pack(12345); err == nil {
		t.Error("int accepted as bytes")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeValues([]Type{Uint256}, []byte{1, 2}); err == nil {
		t.Error("short data accepted")
	}
	// Dynamic offset pointing past the data.
	bad := make([]byte, 32)
	bad[31] = 0xFF
	if _, err := DecodeValues([]Type{Bytes}, bad); err == nil {
		t.Error("bad offset accepted")
	}
}

func TestUnpackOutputs(t *testing.T) {
	m := MustMethod("winner", nil, []string{"bool"})
	enc, _ := EncodeValues([]Type{Bool}, []interface{}{true})
	vals, err := m.Unpack(enc)
	if err != nil || len(vals) != 1 || vals[0].(bool) != true {
		t.Errorf("unpack: %v, %v", vals, err)
	}
}

func TestParseTypeErrors(t *testing.T) {
	if _, err := ParseType("fancytype"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := NewMethod("f", []string{"wat"}, nil); err == nil {
		t.Error("NewMethod with bad type accepted")
	}
}
