// Package rlp implements Ethereum's Recursive Length Prefix serialization.
// RLP encodes two kinds of items: byte strings and lists of items. It is
// used here for transaction/block hashing, trie node encoding, and the
// CREATE contract-address derivation keccak256(rlp([sender, nonce])).
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

// Kind distinguishes the two RLP item kinds.
type Kind int

const (
	// KindBytes is a byte-string item.
	KindBytes Kind = iota
	// KindList is a list item.
	KindList
)

// Item is a decoded RLP item: either a byte string or a list of items.
type Item struct {
	Kind  Kind
	Bytes []byte  // valid when Kind == KindBytes
	Items []*Item // valid when Kind == KindList
}

// Encoder is implemented by types that know how to append their own RLP
// encoding.
type Encoder interface {
	EncodeRLP() []byte
}

// Bytes returns a byte-string item.
func Bytes(b []byte) *Item { return &Item{Kind: KindBytes, Bytes: b} }

// String returns a byte-string item from a string.
func String(s string) *Item { return &Item{Kind: KindBytes, Bytes: []byte(s)} }

// Uint returns a byte-string item holding the minimal big-endian encoding
// of v (zero encodes as the empty string, per the RLP spec).
func Uint(v uint64) *Item { return Bytes(uintBytes(v)) }

// BigInt returns a byte-string item holding the minimal big-endian encoding
// of v, which must be non-negative.
func BigInt(v *big.Int) *Item {
	if v == nil || v.Sign() == 0 {
		return Bytes(nil)
	}
	return Bytes(v.Bytes())
}

// List returns a list item.
func List(items ...*Item) *Item { return &Item{Kind: KindList, Items: items} }

func uintBytes(v uint64) []byte {
	if v == 0 {
		return nil
	}
	var buf [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		buf[7-i] = byte(v >> (8 * uint(i)))
	}
	for n < 8 && buf[n] == 0 {
		n++
	}
	return buf[n:]
}

// Encode returns the RLP encoding of the item tree.
func Encode(item *Item) []byte {
	return appendItem(nil, item)
}

// EncodeBytes returns the RLP encoding of a single byte string.
func EncodeBytes(b []byte) []byte { return Encode(Bytes(b)) }

// EncodeUint returns the RLP encoding of an unsigned integer.
func EncodeUint(v uint64) []byte { return Encode(Uint(v)) }

// EncodeList returns the RLP encoding of a list of items.
func EncodeList(items ...*Item) []byte { return Encode(List(items...)) }

func appendItem(dst []byte, item *Item) []byte {
	switch item.Kind {
	case KindBytes:
		return appendString(dst, item.Bytes)
	case KindList:
		var payload []byte
		for _, it := range item.Items {
			payload = appendItem(payload, it)
		}
		dst = appendLength(dst, 0xc0, len(payload))
		return append(dst, payload...)
	default:
		panic(fmt.Sprintf("rlp: invalid kind %d", item.Kind))
	}
}

func appendString(dst, b []byte) []byte {
	if len(b) == 1 && b[0] < 0x80 {
		return append(dst, b[0])
	}
	dst = appendLength(dst, 0x80, len(b))
	return append(dst, b...)
}

func appendLength(dst []byte, offset byte, length int) []byte {
	if length < 56 {
		return append(dst, offset+byte(length))
	}
	lb := uintBytes(uint64(length))
	dst = append(dst, offset+55+byte(len(lb)))
	return append(dst, lb...)
}

// Decoding errors.
var (
	ErrTruncated     = errors.New("rlp: input truncated")
	ErrTrailingBytes = errors.New("rlp: trailing bytes after item")
	ErrCanonical     = errors.New("rlp: non-canonical encoding")
	ErrTooDeep       = errors.New("rlp: nesting too deep")
)

const maxDepth = 64

// Decode parses a complete RLP item from data, rejecting trailing bytes.
func Decode(data []byte) (*Item, error) {
	item, rest, err := decodeItem(data, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailingBytes
	}
	return item, nil
}

// DecodePrefix parses one RLP item from the front of data and returns the
// remaining bytes.
func DecodePrefix(data []byte) (*Item, []byte, error) {
	return decodeItem(data, 0)
}

func decodeItem(data []byte, depth int) (*Item, []byte, error) {
	if depth > maxDepth {
		return nil, nil, ErrTooDeep
	}
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	b := data[0]
	switch {
	case b < 0x80: // single byte
		return Bytes(data[:1]), data[1:], nil
	case b <= 0xb7: // short string
		n := int(b - 0x80)
		if len(data) < 1+n {
			return nil, nil, ErrTruncated
		}
		if n == 1 && data[1] < 0x80 {
			return nil, nil, ErrCanonical // should have been a single byte
		}
		return Bytes(data[1 : 1+n]), data[1+n:], nil
	case b <= 0xbf: // long string
		ln := int(b - 0xb7)
		n, rest, err := decodeLength(data[1:], ln)
		if err != nil {
			return nil, nil, err
		}
		if n < 56 {
			return nil, nil, ErrCanonical
		}
		if len(rest) < n {
			return nil, nil, ErrTruncated
		}
		return Bytes(rest[:n]), rest[n:], nil
	case b <= 0xf7: // short list
		n := int(b - 0xc0)
		return decodeListPayload(data[1:], n, depth)
	default: // long list
		ln := int(b - 0xf7)
		n, rest, err := decodeLength(data[1:], ln)
		if err != nil {
			return nil, nil, err
		}
		if n < 56 {
			return nil, nil, ErrCanonical
		}
		restAfter := rest
		return decodeListPayload(restAfter, n, depth)
	}
}

func decodeLength(data []byte, lenBytes int) (int, []byte, error) {
	if len(data) < lenBytes {
		return 0, nil, ErrTruncated
	}
	if lenBytes == 0 || lenBytes > 8 {
		return 0, nil, ErrCanonical
	}
	if data[0] == 0 {
		return 0, nil, ErrCanonical // no leading zeros in length
	}
	var n uint64
	for i := 0; i < lenBytes; i++ {
		n = n<<8 | uint64(data[i])
	}
	if n > 1<<31 {
		return 0, nil, fmt.Errorf("rlp: length %d too large", n)
	}
	return int(n), data[lenBytes:], nil
}

func decodeListPayload(data []byte, n, depth int) (*Item, []byte, error) {
	if len(data) < n {
		return nil, nil, ErrTruncated
	}
	payload := data[:n]
	var items []*Item
	for len(payload) > 0 {
		item, rest, err := decodeItem(payload, depth+1)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, item)
		payload = rest
	}
	return &Item{Kind: KindList, Items: items}, data[n:], nil
}

// Uint64 interprets a decoded byte-string item as a big-endian unsigned
// integer, enforcing canonical form (no leading zeros, fits in 64 bits).
func (it *Item) Uint64() (uint64, error) {
	if it.Kind != KindBytes {
		return 0, errors.New("rlp: expected bytes, found list")
	}
	if len(it.Bytes) > 8 {
		return 0, errors.New("rlp: integer overflows uint64")
	}
	if len(it.Bytes) > 0 && it.Bytes[0] == 0 {
		return 0, ErrCanonical
	}
	var v uint64
	for _, b := range it.Bytes {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// BigInt interprets a decoded byte-string item as a big-endian unsigned
// big integer.
func (it *Item) BigInt() (*big.Int, error) {
	if it.Kind != KindBytes {
		return nil, errors.New("rlp: expected bytes, found list")
	}
	if len(it.Bytes) > 0 && it.Bytes[0] == 0 {
		return nil, ErrCanonical
	}
	return new(big.Int).SetBytes(it.Bytes), nil
}
