package rlp

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzRLPRoundTrip checks the codec's two halves against each other on
// arbitrary inputs:
//
//   - decode direction: Decode must never panic, and anything it accepts
//     must re-encode byte-identically (the canonical-form checks make
//     valid RLP a bijection);
//   - encode direction: an item tree built from the fuzz input must
//     survive Encode → Decode structurally unchanged.
func FuzzRLPRoundTrip(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0x01})
	f.Add(Encode(List(Uint(1<<40), String("hub"), List(Bytes(nil)))))
	f.Add(Encode(BigInt(new(big.Int).Lsh(big.NewInt(1), 200))))
	f.Add([]byte{0xb8, 0x38})              // long-string header, truncated
	f.Add([]byte{0xf8, 0x01, 0x00, 0x00})  // non-canonical long list
	f.Add(bytes.Repeat([]byte{0xc1}, 128)) // deep nesting

	f.Fuzz(func(t *testing.T, data []byte) {
		if item, err := Decode(data); err == nil {
			if got := Encode(item); !bytes.Equal(got, data) {
				t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, got)
			}
		}

		// Build a tree from the input and round-trip it. The builder
		// consumes bytes as instructions; whatever it produces must be
		// encodable and decode back to the same structure.
		tree, _ := buildItem(data, 0)
		if tree == nil {
			return
		}
		enc := Encode(tree)
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("encoder produced undecodable RLP for %x: %v", data, err)
		}
		if !sameItem(tree, back) {
			t.Fatalf("structural round trip mismatch for %x", data)
		}
	})
}

// buildItem interprets fuzz bytes as a tree constructor: 0 starts a list
// (children until a 1 byte or input ends), anything else emits a byte
// string of length b%17 drawn from the input.
func buildItem(data []byte, depth int) (*Item, []byte) {
	if len(data) == 0 || depth > 8 {
		return nil, data
	}
	op, rest := data[0], data[1:]
	if op == 0 {
		var items []*Item
		for len(rest) > 0 && rest[0] != 1 && len(items) < 8 {
			var child *Item
			child, rest = buildItem(rest, depth+1)
			if child == nil {
				break
			}
			items = append(items, child)
		}
		if len(rest) > 0 && rest[0] == 1 {
			rest = rest[1:]
		}
		return List(items...), rest
	}
	n := int(op) % 17
	if n > len(rest) {
		n = len(rest)
	}
	return Bytes(rest[:n]), rest[n:]
}

func sameItem(a, b *Item) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == KindBytes {
		return bytes.Equal(a.Bytes, b.Bytes)
	}
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if !sameItem(a.Items[i], b.Items[i]) {
			return false
		}
	}
	return true
}
