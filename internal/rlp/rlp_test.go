package rlp

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func enc(t *testing.T, it *Item) string {
	t.Helper()
	return hex.EncodeToString(Encode(it))
}

// Canonical vectors from the Ethereum RLP specification.
func TestEncodeVectors(t *testing.T) {
	cases := []struct {
		name string
		item *Item
		want string
	}{
		{"dog", String("dog"), "83646f67"},
		{"cat-dog list", List(String("cat"), String("dog")), "c88363617483646f67"},
		{"empty string", String(""), "80"},
		{"empty list", List(), "c0"},
		{"zero", Uint(0), "80"},
		{"0x0f", Uint(15), "0f"},
		{"0x0400", Uint(1024), "820400"},
		{"set of three", List(List(), List(List()), List(List(), List(List()))),
			"c7c0c1c0c3c0c1c0"},
		{"lorem ipsum", String("Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
			"b838" + hex.EncodeToString([]byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit"))},
		{"single byte 0x00", Bytes([]byte{0}), "00"},
		{"single byte 0x7f", Bytes([]byte{0x7f}), "7f"},
		{"single byte 0x80", Bytes([]byte{0x80}), "8180"},
	}
	for _, c := range cases {
		if got := enc(t, c.item); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestEncodeLongString(t *testing.T) {
	s := strings.Repeat("a", 1024)
	got := Encode(String(s))
	// 1024 = 0x0400 needs two length bytes: prefix 0xb9 0x04 0x00.
	want := append([]byte{0xb9, 0x04, 0x00}, []byte(s)...)
	if !bytes.Equal(got, want) {
		t.Errorf("long string prefix: got %x", got[:4])
	}
}

func TestEncodeLongList(t *testing.T) {
	var items []*Item
	for i := 0; i < 100; i++ {
		items = append(items, String("abcdefgh")) // 9 bytes each encoded
	}
	got := Encode(List(items...))
	// payload = 900 bytes = 0x0384, prefix 0xf9 0x03 0x84
	if got[0] != 0xf9 || got[1] != 0x03 || got[2] != 0x84 {
		t.Errorf("long list prefix: got %x", got[:3])
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(b []byte, small uint8, v uint64) bool {
		item := List(
			Bytes(b),
			Uint(uint64(small)),
			Uint(v),
			List(Bytes(b), List()),
			String("fixed"),
		)
		encoded := Encode(item)
		decoded, err := Decode(encoded)
		if err != nil {
			return false
		}
		// Re-encode must be identical (canonical encoding).
		return bytes.Equal(Encode(decoded), encoded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValues(t *testing.T) {
	item, err := Decode(Encode(List(Uint(42), String("hi"), BigInt(big.NewInt(1e18)))))
	if err != nil {
		t.Fatal(err)
	}
	if item.Kind != KindList || len(item.Items) != 3 {
		t.Fatalf("bad decode shape: %+v", item)
	}
	v, err := item.Items[0].Uint64()
	if err != nil || v != 42 {
		t.Errorf("Uint64: %v, %v", v, err)
	}
	if string(item.Items[1].Bytes) != "hi" {
		t.Errorf("string: %q", item.Items[1].Bytes)
	}
	b, err := item.Items[2].BigInt()
	if err != nil || b.Cmp(big.NewInt(1e18)) != 0 {
		t.Errorf("BigInt: %v, %v", b, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"truncated string", "83646f"},
		{"truncated list", "c883636174"},
		{"trailing bytes", "83646f6700"},
		{"non-canonical single byte", "8100"},
		{"non-canonical long length", "b800"},
		{"leading zero in length", "b90001" + strings.Repeat("61", 1)},
		{"empty input", ""},
	}
	for _, c := range cases {
		data, err := hex.DecodeString(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodePrefix(t *testing.T) {
	data := append(Encode(String("cat")), Encode(String("dog"))...)
	first, rest, err := DecodePrefix(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(first.Bytes) != "cat" {
		t.Errorf("first = %q", first.Bytes)
	}
	second, rest2, err := DecodePrefix(rest)
	if err != nil || len(rest2) != 0 || string(second.Bytes) != "dog" {
		t.Errorf("second = %v, rest = %x, err = %v", second, rest2, err)
	}
}

func TestUint64NonCanonical(t *testing.T) {
	// 0x820001 encodes integer 1 with a leading zero byte: invalid as int.
	item, err := Decode([]byte{0x82, 0x00, 0x01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := item.Uint64(); err == nil {
		t.Error("expected canonical-form error")
	}
}

func TestNestingDepthLimit(t *testing.T) {
	// Build a 100-deep nested list: c1 c1 c1 ... c0
	data := make([]byte, 0, 101)
	for i := 0; i < 100; i++ {
		data = append(data, 0xc1)
	}
	data = append(data, 0xc0)
	if _, err := Decode(data); err == nil {
		t.Error("expected depth error")
	}
}

func TestBigIntNil(t *testing.T) {
	if got := enc(t, BigInt(nil)); got != "80" {
		t.Errorf("BigInt(nil) = %s", got)
	}
	if got := enc(t, BigInt(new(big.Int))); got != "80" {
		t.Errorf("BigInt(0) = %s", got)
	}
}

// The famous Ethereum constant: keccak256(rlp("")) is the empty trie root.
// Here we only verify rlp of empty string is 0x80, the hashing is checked
// in the trie package.
func TestEmptyStringEncoding(t *testing.T) {
	if got := EncodeBytes(nil); !bytes.Equal(got, []byte{0x80}) {
		t.Errorf("rlp(\"\") = %x", got)
	}
}

func BenchmarkEncodeTxShape(b *testing.B) {
	item := List(
		Uint(7),
		BigInt(big.NewInt(20_000_000_000)),
		Uint(21000),
		Bytes(make([]byte, 20)),
		BigInt(big.NewInt(1e18)),
		Bytes(make([]byte, 100)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(item)
	}
}
