package experiments

import (
	"strings"
	"testing"
)

// Table II shape: returnDisputeResolution grows with reveal weight (the
// miners recompute it), while deployVerifiedInstance is dominated by the
// constant part (calldata + 2 ecrecover + CREATE + code deposit).
func TestTable2Shape(t *testing.T) {
	rows, err := Table2([]uint64{0, 64, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0]
	// Same decade as the paper's 225082 constant.
	if base.DeployVIGas < 100_000 || base.DeployVIGas > 1_000_000 {
		t.Errorf("deployVerifiedInstance base = %d, expected ~10^5", base.DeployVIGas)
	}
	// Paper's 37745: tens of thousands for a light reveal.
	if base.ReturnDRGas < 20_000 || base.ReturnDRGas > 120_000 {
		t.Errorf("returnDisputeResolution base = %d, expected ~10^4..10^5", base.ReturnDRGas)
	}
	// returnDisputeResolution carries the reveal() re-execution: strictly
	// increasing in rounds.
	if !(rows[0].ReturnDRGas < rows[1].ReturnDRGas && rows[1].ReturnDRGas < rows[2].ReturnDRGas) {
		t.Errorf("returnDR not increasing: %d, %d, %d",
			rows[0].ReturnDRGas, rows[1].ReturnDRGas, rows[2].ReturnDRGas)
	}
	// deployVerifiedInstance must be roughly constant (bytecode size does
	// not depend on rounds; only the constructor arg changes).
	spread := float64(rows[2].DeployVIGas) / float64(rows[0].DeployVIGas)
	if spread > 1.1 {
		t.Errorf("deployVI spread %.2f, expected near-constant", spread)
	}
	if !strings.Contains(FormatTable2(rows), "deployVerifiedInstance") {
		t.Error("bad table format")
	}
}

// Fig. 1 shape: the hybrid model saves miner gas in the honest case, and
// the saving grows with the heavy function's weight; the dispute path costs
// more than the monolith (that is the deterrent, not the common case).
func TestFig1Shape(t *testing.T) {
	rows, err := Fig1([]uint64{16, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HybridDisputeGas <= r.HybridHonestGas {
			t.Errorf("rounds=%d: dispute %d <= honest %d",
				r.RevealRounds, r.HybridDisputeGas, r.HybridHonestGas)
		}
	}
	// Below the crossover the monolith wins (padding overhead); above it
	// the hybrid model must win. 1024 keccak rounds is far above.
	last := rows[len(rows)-1]
	if last.HybridHonestGas >= last.MonolithGas {
		t.Errorf("rounds=%d: hybrid honest %d >= monolith %d — no crossover",
			last.RevealRounds, last.HybridHonestGas, last.MonolithGas)
	}
	// Savings grow with heavy weight.
	if !(rows[0].HonestSavingsPct < rows[2].HonestSavingsPct) {
		t.Errorf("savings not increasing: %.1f%% vs %.1f%%",
			rows[0].HonestSavingsPct, rows[2].HonestSavingsPct)
	}
	// The honest hybrid path's miner gas must NOT grow with reveal weight
	// (the whole point: miners never run reveal).
	if rows[2].HybridHonestGas > rows[0].HybridHonestGas+rows[0].HybridHonestGas/10 {
		t.Errorf("hybrid honest grows with reveal weight: %d -> %d",
			rows[0].HybridHonestGas, rows[2].HybridHonestGas)
	}
	// Monolith gas must grow with reveal weight.
	if rows[2].MonolithGas <= rows[0].MonolithGas {
		t.Error("monolith gas does not grow with reveal weight")
	}
	if !strings.Contains(FormatFig1(rows), "savings") {
		t.Error("bad fig1 format")
	}
}

func TestFig2Stages(t *testing.T) {
	rows, err := Fig2(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("stages = %d", len(rows))
	}
	var disputeOnChain uint64
	for _, r := range rows {
		if r.Path == "dispute" && r.OnChain {
			disputeOnChain += r.Gas
		}
	}
	if disputeOnChain == 0 {
		t.Error("no dispute-stage gas recorded")
	}
	out := FormatFig2(rows)
	for _, stage := range []string{"split/generate", "deployVerifiedInstance", "returnDisputeResolution"} {
		if !strings.Contains(out, stage) {
			t.Errorf("format missing %s", stage)
		}
	}
}

// A1 shape: at p=0 hybrid wins; at p=1 hybrid loses (dispute path includes
// everything the monolith does plus verification overhead); expected cost
// is monotone in p, so there is a crossover.
func TestDisputeProbabilityCrossover(t *testing.T) {
	ps := []float64{0, 0.25, 0.5, 0.75, 1}
	rows, err := DisputeProbability(512, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].HybridStillWins {
		t.Error("hybrid loses even at p=0")
	}
	if rows[len(rows)-1].HybridStillWins {
		t.Error("hybrid wins even at p=1 — dispute overhead unaccounted")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ExpectedHybrid < rows[i-1].ExpectedHybrid {
			t.Error("expected cost not monotone in p")
		}
	}
	if !strings.Contains(FormatDisputeProbability(rows), "E[hybrid]") {
		t.Error("bad format")
	}
}

// A2 shape: honest hybrid reveals strictly fewer bytes than the monolith;
// a dispute reveals the bytecode (the paper's explicit trade-off).
func TestPrivacyLeakageShape(t *testing.T) {
	rows, err := PrivacyLeakage(64)
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]PrivacyRow{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	mono := byModel["all-on-chain"]
	honest := byModel["hybrid (honest)"]
	disputed := byModel["hybrid (dispute)"]
	if honest.HiddenBytes == 0 {
		t.Error("honest hybrid hides no bytes")
	}
	if mono.HiddenBytes != 0 || disputed.HiddenBytes != 0 {
		t.Error("monolith/dispute should hide nothing")
	}
	if honest.SecretsOnChain {
		t.Error("honest hybrid leaks secrets")
	}
	if !mono.SecretsOnChain || !disputed.SecretsOnChain {
		t.Error("expected secret exposure flags")
	}
	if disputed.CodeBytes <= honest.CodeBytes {
		t.Error("dispute did not increase the public footprint")
	}
	if !strings.Contains(FormatPrivacyLeakage(rows), "secrets") {
		t.Error("bad format")
	}
}

// A3 shape: dispute deployment grows roughly linearly with participants
// (one ecrecover + calldata per extra signature).
func TestParticipantsScaling(t *testing.T) {
	rows, err := Participants([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].DeployVIGas < rows[1].DeployVIGas && rows[1].DeployVIGas < rows[2].DeployVIGas) {
		t.Errorf("gas not increasing with n: %v", rows)
	}
	// Marginal per-signer cost: ecrecover (3000) + ~96 bytes calldata
	// (~6.5k) + the growing off-chain contract's code deposit at CREATE
	// (the settle loop and guards grow with n). Observed ~31k; keep a
	// generous envelope that still catches pathological blowups.
	for _, r := range rows[1:] {
		if r.PerSigGas < 3_000 || r.PerSigGas > 60_000 {
			t.Errorf("n=%d: per-signature gas %d out of range", r.N, r.PerSigGas)
		}
	}
	if !strings.Contains(FormatParticipants(rows), "marginal") {
		t.Error("bad format")
	}
}

func TestDepositCompensation(t *testing.T) {
	rows, err := DepositCompensation(64, []uint64{0, 100_000, 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Compensated {
		t.Error("zero deposit compensates")
	}
	if !rows[2].Compensated {
		t.Error("10M-wei deposit does not compensate")
	}
	if !strings.Contains(FormatDepositCompensation(rows), "deposit") {
		t.Error("bad format")
	}
}

// Lifecycle sanity shared by all experiments.
func TestLifecycleAccounting(t *testing.T) {
	lc, err := RunBettingLifecycle(ModeHybrid, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	sum := lc.DeployGas + lc.DepositGas + lc.ResolveGas + lc.DeployVIGas + lc.ReturnDRGas
	if lc.TotalMinerGas() != sum {
		t.Error("TotalMinerGas mismatch")
	}
	if lc.OffChainGas == 0 {
		t.Error("no off-chain gas recorded for hybrid mode")
	}
	mono, err := RunBettingLifecycle(ModeMonolith, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	if mono.OffChainGas != 0 {
		t.Error("monolith recorded off-chain gas")
	}
	if mono.DeployVIGas != 0 || mono.ReturnDRGas != 0 {
		t.Error("monolith recorded dispute gas")
	}
}
