// Package experiments implements the paper's evaluation: drivers that
// regenerate every table and figure (Table II gas costs, the Fig. 1
// all-on-chain vs hybrid comparison, Fig. 2 stage costs) plus the
// ablations DESIGN.md calls out (dispute probability, privacy leakage,
// participant scaling, security deposits). Both bench_test.go and
// cmd/bench call these, so the paper's numbers are regenerable in one
// command.
package experiments

import (
	"fmt"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

// Mode selects the execution model of paper Fig. 1.
type Mode string

// The two execution models.
const (
	ModeMonolith Mode = "all-on-chain"
	ModeHybrid   Mode = "hybrid-on/off-chain"
)

// LifecycleGas breaks down the miner gas spent over one full betting
// lifecycle (deploy → deposits → resolution).
type LifecycleGas struct {
	Mode    Mode
	Dispute bool

	DeployGas   uint64
	DepositGas  uint64
	ResolveGas  uint64 // reassign (monolith) or submit+finalize (hybrid)
	DeployVIGas uint64 // deployVerifiedInstance (dispute only)
	ReturnDRGas uint64 // returnDisputeResolution (dispute only)

	// OffChainGas is work done privately by participants (NOT miner work):
	// the gas-equivalent of the sandbox execution.
	OffChainGas uint64

	// OnChainCodeBytes and OnChainCalldataBytes measure the public
	// footprint (privacy surface).
	OnChainCodeBytes     int
	OnChainCalldataBytes int
}

// TotalMinerGas sums all gas executed by miners.
func (l *LifecycleGas) TotalMinerGas() uint64 {
	return l.DeployGas + l.DepositGas + l.ResolveGas + l.DeployVIGas + l.ReturnDRGas
}

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

// env is a fresh two-party world.
type env struct {
	chain *chain.Chain
	net   *whisper.Network
	alice *hybrid.Participant
	bob   *hybrid.Participant
}

func newEnv() *env {
	keyA, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xA11CE))
	keyB, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xB0B))
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(keyA.EthereumAddress()): eth(1000),
		types.Address(keyB.EthereumAddress()): eth(1000),
	})
	net := whisper.NewNetwork(c.Now)
	return &env{
		chain: c,
		net:   net,
		alice: hybrid.NewParticipant(keyA, c, net),
		bob:   hybrid.NewParticipant(keyB, c, net),
	}
}

func (e *env) parties() []*hybrid.Participant {
	return []*hybrid.Participant{e.alice, e.bob}
}

// RunBettingLifecycle executes one full betting lifecycle in the given
// mode and returns the gas breakdown. For ModeHybrid with dispute=true,
// the loser submits a false result and the winner resolves through the
// signed copy (paper Table I rule 5).
func RunBettingLifecycle(mode Mode, revealRounds uint64, dispute bool) (*LifecycleGas, error) {
	e := newEnv()
	out := &LifecycleGas{Mode: mode, Dispute: dispute}
	now := e.chain.Now()
	ctorArgs := []interface{}{
		e.alice.Addr, e.bob.Addr, now + 1000, now + 2000, now + 3000,
		uint64(0x5ec4e7a), uint64(0x5ec4e7b), revealRounds,
	}

	split, err := hybrid.Split(hybrid.BettingSource, "Betting", hybrid.BettingPolicy(600))
	if err != nil {
		return nil, err
	}

	switch mode {
	case ModeMonolith:
		code, err := split.Monolith.DeployWithArgs(ctorArgs...)
		if err != nil {
			return nil, err
		}
		addr, r, err := e.alice.Deploy(code, nil, 8_000_000)
		if err != nil {
			return nil, err
		}
		out.DeployGas = r.GasUsed
		out.OnChainCodeBytes = len(e.chain.CodeAt(addr))
		out.OnChainCalldataBytes = len(code)
		for _, p := range e.parties() {
			r, err := p.Invoke(split.Monolith, addr, eth(1), 300_000, "deposit")
			if err != nil || !r.Succeeded() {
				return nil, fmt.Errorf("deposit failed: %v", err)
			}
			out.DepositGas += r.GasUsed
			out.OnChainCalldataBytes += 4
		}
		e.chain.AdvanceTime(2100) // into the T2..T3 window
		r, err = e.alice.Invoke(split.Monolith, addr, nil, 8_000_000, "reassign")
		if err != nil || !r.Succeeded() {
			return nil, fmt.Errorf("reassign failed: %v (reason %x)", err, r.RevertReason)
		}
		out.ResolveGas = r.GasUsed
		out.OnChainCalldataBytes += 4
		return out, nil

	case ModeHybrid:
		sess, err := hybrid.NewSession(split, e.parties())
		if err != nil {
			return nil, err
		}
		r, err := sess.DeployOnChain(8_000_000, ctorArgs...)
		if err != nil {
			return nil, err
		}
		out.DeployGas = r.GasUsed
		out.OnChainCodeBytes = len(e.chain.CodeAt(sess.OnChainAddr))
		onCode, _ := split.OnChain.DeployWithArgs(split.OnChainCtorArgs(ctorArgs)...)
		out.OnChainCalldataBytes = len(onCode)
		if err := sess.SignAndExchange(ctorArgs...); err != nil {
			return nil, err
		}
		for _, p := range e.parties() {
			r, err := p.Invoke(split.OnChain, sess.OnChainAddr, eth(1), 300_000, "deposit")
			if err != nil || !r.Succeeded() {
				return nil, fmt.Errorf("deposit failed: %v", err)
			}
			out.DepositGas += r.GasUsed
			out.OnChainCalldataBytes += 4
		}
		e.chain.AdvanceTime(2100)
		outcome, err := sess.ExecuteOffChainAll()
		if err != nil {
			return nil, err
		}
		out.OffChainGas = outcome.DeployGas + outcome.ExecGas

		if !dispute {
			r, err := sess.SubmitResult(0, outcome.Result)
			if err != nil || !r.Succeeded() {
				return nil, fmt.Errorf("submitResult failed: %v", err)
			}
			out.ResolveGas += r.GasUsed
			out.OnChainCalldataBytes += 4 + 32
			e.chain.AdvanceTime(700)
			r, err = sess.FinalizeResult(1)
			if err != nil || !r.Succeeded() {
				return nil, fmt.Errorf("finalizeResult failed: %v", err)
			}
			out.ResolveGas += r.GasUsed
			out.OnChainCalldataBytes += 4
			return out, nil
		}

		// Dispute: the loser lies, the winner enforces the truth.
		liar := 1 - int(outcome.Result)
		r, err = sess.SubmitResult(liar, uint64(1-outcome.Result))
		if err != nil || !r.Succeeded() {
			return nil, fmt.Errorf("lying submit failed: %v", err)
		}
		out.ResolveGas += r.GasUsed
		out.OnChainCalldataBytes += 4 + 32
		deployR, returnR, err := sess.Dispute(int(outcome.Result))
		if err != nil {
			return nil, err
		}
		out.DeployVIGas = deployR.GasUsed
		out.ReturnDRGas = returnR.GasUsed
		// deployVerifiedInstance calldata: selector + bytes head/len +
		// bytecode + 2 sig tuples.
		out.OnChainCalldataBytes += 4 + 64 + len(sess.Copy.Bytecode) + 6*32
		out.OnChainCalldataBytes += 4 + 32 // returnDisputeResolution
		// The revealed instance code is now public too.
		out.OnChainCodeBytes += len(e.chain.CodeAt(sess.InstanceAddr))
		return out, nil
	}
	return nil, fmt.Errorf("unknown mode %q", mode)
}
