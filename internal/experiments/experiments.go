package experiments

import (
	"fmt"
	"strings"

	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
)

// --- Experiment T2: paper Table II -------------------------------------

// Table2Row reproduces one row of the paper's gas-cost table, sweeping the
// weight of reveal() (the paper reports the dispute cost as
// "225082 + reveal()"; the sweep makes that additive structure visible).
type Table2Row struct {
	RevealRounds     uint64
	DeployVIGas      uint64 // deployVerifiedInstance()
	ReturnDRGas      uint64 // returnDisputeResolution()
	OffChainBytecode int    // signed-copy size driving the deploy cost
}

// Table2 measures the two extra functions' gas across reveal() weights.
func Table2(revealRounds []uint64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, rounds := range revealRounds {
		lc, err := RunBettingLifecycle(ModeHybrid, rounds, true)
		if err != nil {
			return nil, fmt.Errorf("table2 rounds=%d: %w", rounds, err)
		}
		split, err := hybrid.Split(hybrid.BettingSource, "Betting", hybrid.BettingPolicy(600))
		if err != nil {
			return nil, err
		}
		code, err := split.OffChain.DeployWithArgs(
			types.Address{1}, types.Address{2},
			uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), rounds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			RevealRounds:     rounds,
			DeployVIGas:      lc.DeployVIGas,
			ReturnDRGas:      lc.ReturnDRGas,
			OffChainBytecode: len(code),
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows in the paper's Table II shape.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II — Gas cost of the dispute-resolution extra functions\n")
	b.WriteString("(paper, Kovan/Solidity: deployVerifiedInstance = 225082 + reveal(); returnDisputeResolution = 37745)\n\n")
	fmt.Fprintf(&b, "%-14s %28s %28s %18s\n", "reveal rounds", "deployVerifiedInstance()", "returnDisputeResolution()", "bytecode bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %28d %28d %18d\n", r.RevealRounds, r.DeployVIGas, r.ReturnDRGas, r.OffChainBytecode)
	}
	return b.String()
}

// --- Experiment F1: paper Fig. 1 ----------------------------------------

// Fig1Row compares miner work between the all-on-chain model and the
// hybrid model for the same contract lifecycle.
type Fig1Row struct {
	RevealRounds     uint64
	MonolithGas      uint64 // all functions executed by miners
	HybridHonestGas  uint64 // heavy function executed privately
	HybridDisputeGas uint64 // dispute forces re-execution by miners
	OffChainGas      uint64 // participant-side work in the hybrid model
	HonestSavingsPct float64
}

// Fig1 sweeps the heavy-function weight, reproducing the comparison of the
// two execution models in the paper's Fig. 1. Finding: the hybrid model
// only wins once the heavy function outweighs the padded dispute
// machinery's deployment overhead — below that crossover the all-on-chain
// model is cheaper (see EXPERIMENTS.md).
func Fig1(revealRounds []uint64) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, rounds := range revealRounds {
		mono, err := RunBettingLifecycle(ModeMonolith, rounds, false)
		if err != nil {
			return nil, fmt.Errorf("fig1 monolith rounds=%d: %w", rounds, err)
		}
		honest, err := RunBettingLifecycle(ModeHybrid, rounds, false)
		if err != nil {
			return nil, fmt.Errorf("fig1 hybrid rounds=%d: %w", rounds, err)
		}
		disputed, err := RunBettingLifecycle(ModeHybrid, rounds, true)
		if err != nil {
			return nil, fmt.Errorf("fig1 dispute rounds=%d: %w", rounds, err)
		}
		row := Fig1Row{
			RevealRounds:     rounds,
			MonolithGas:      mono.TotalMinerGas(),
			HybridHonestGas:  honest.TotalMinerGas(),
			HybridDisputeGas: disputed.TotalMinerGas(),
			OffChainGas:      honest.OffChainGas,
		}
		row.HonestSavingsPct = 100 * (1 - float64(row.HybridHonestGas)/float64(row.MonolithGas))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig1 renders the model comparison.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Fig. 1 — Miner gas: all-on-chain vs hybrid-on/off-chain execution model\n")
	b.WriteString("(full lifecycle: deploy + 2 deposits + resolution)\n\n")
	fmt.Fprintf(&b, "%-14s %14s %16s %17s %14s %10s\n",
		"reveal rounds", "all-on-chain", "hybrid (honest)", "hybrid (dispute)", "off-chain gas", "savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %14d %16d %17d %14d %9.1f%%\n",
			r.RevealRounds, r.MonolithGas, r.HybridHonestGas, r.HybridDisputeGas, r.OffChainGas, r.HonestSavingsPct)
	}
	return b.String()
}

// --- Experiment F2: paper Fig. 2 ----------------------------------------

// Fig2Row is one stage of the four-stage mechanism with its cost.
type Fig2Row struct {
	Stage   string
	Path    string // "honest" or "dispute"
	OnChain bool
	Gas     uint64
	Note    string
}

// Fig2 measures the cost of each protocol stage for both paths.
func Fig2(revealRounds uint64) ([]Fig2Row, error) {
	honest, err := RunBettingLifecycle(ModeHybrid, revealRounds, false)
	if err != nil {
		return nil, err
	}
	disputed, err := RunBettingLifecycle(ModeHybrid, revealRounds, true)
	if err != nil {
		return nil, err
	}
	return []Fig2Row{
		{"1 split/generate", "both", false, 0, "compiler + splitter, no chain interaction"},
		{"2 deploy (on-chain half)", "both", true, honest.DeployGas, "only the light/public functions are deployed"},
		{"2 sign (off-chain half)", "both", false, 0, "keccak256(bytecode) signed by all; whisper exchange"},
		{"3 deposits", "both", true, honest.DepositGas, "light/public function calls"},
		{"3 off-chain execution", "both", false, honest.OffChainGas, "participants' private sandbox (gas-equivalent)"},
		{"3 submit+finalize", "honest", true, honest.ResolveGas, "representative submits; challenge window passes"},
		{"4 deployVerifiedInstance", "dispute", true, disputed.DeployVIGas, "signature check + CREATE of verified instance"},
		{"4 returnDisputeResolution", "dispute", true, disputed.ReturnDRGas, "miners recompute reveal(); truth enforced"},
	}, nil
}

// FormatFig2 renders the stage table.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — Four-stage enforcement mechanism: per-stage cost\n\n")
	fmt.Fprintf(&b, "%-28s %-8s %-9s %12s  %s\n", "stage", "path", "location", "gas", "note")
	for _, r := range rows {
		loc := "off-chain"
		if r.OnChain {
			loc = "on-chain"
		}
		fmt.Fprintf(&b, "%-28s %-8s %-9s %12d  %s\n", r.Stage, r.Path, loc, r.Gas, r.Note)
	}
	return b.String()
}

// --- Ablation A1: dispute probability crossover --------------------------

// DisputeProbRow gives expected miner gas as a function of the dispute
// probability p: E[hybrid] = (1-p)·honest + p·dispute.
type DisputeProbRow struct {
	P               float64
	ExpectedHybrid  float64
	MonolithGas     uint64
	HybridStillWins bool
}

// DisputeProbability sweeps p and finds where the hybrid model stops
// paying off against always-on-chain execution.
func DisputeProbability(revealRounds uint64, ps []float64) ([]DisputeProbRow, error) {
	mono, err := RunBettingLifecycle(ModeMonolith, revealRounds, false)
	if err != nil {
		return nil, err
	}
	honest, err := RunBettingLifecycle(ModeHybrid, revealRounds, false)
	if err != nil {
		return nil, err
	}
	disputed, err := RunBettingLifecycle(ModeHybrid, revealRounds, true)
	if err != nil {
		return nil, err
	}
	var rows []DisputeProbRow
	for _, p := range ps {
		expected := (1-p)*float64(honest.TotalMinerGas()) + p*float64(disputed.TotalMinerGas())
		rows = append(rows, DisputeProbRow{
			P:               p,
			ExpectedHybrid:  expected,
			MonolithGas:     mono.TotalMinerGas(),
			HybridStillWins: expected < float64(mono.TotalMinerGas()),
		})
	}
	return rows, nil
}

// FormatDisputeProbability renders the sweep.
func FormatDisputeProbability(rows []DisputeProbRow) string {
	var b strings.Builder
	b.WriteString("Ablation A1 — Expected miner gas vs dispute probability p\n\n")
	fmt.Fprintf(&b, "%-8s %18s %14s %s\n", "p", "E[hybrid] gas", "all-on-chain", "hybrid wins?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f %18.0f %14d %v\n", r.P, r.ExpectedHybrid, r.MonolithGas, r.HybridStillWins)
	}
	return b.String()
}

// --- Ablation A2: privacy leakage ----------------------------------------

// PrivacyRow measures the public footprint of each model. Raw size is not
// the privacy metric (the padded on-chain half is BIGGER than the
// monolith); what matters is whether the heavy/private logic and its
// parameters are exposed, and how many bytes stay private.
type PrivacyRow struct {
	Model          string
	CodeBytes      int
	CalldataBytes  int
	SecretsOnChain bool
	HiddenBytes    int // off-chain bytecode kept private in this model/path
}

// PrivacyLeakage compares the bytes (code + calldata) each model reveals
// on the public chain, and whether the private rule parameters appear.
func PrivacyLeakage(revealRounds uint64) ([]PrivacyRow, error) {
	mono, err := RunBettingLifecycle(ModeMonolith, revealRounds, false)
	if err != nil {
		return nil, err
	}
	honest, err := RunBettingLifecycle(ModeHybrid, revealRounds, false)
	if err != nil {
		return nil, err
	}
	disputed, err := RunBettingLifecycle(ModeHybrid, revealRounds, true)
	if err != nil {
		return nil, err
	}
	split, err := hybrid.Split(hybrid.BettingSource, "Betting", hybrid.BettingPolicy(600))
	if err != nil {
		return nil, err
	}
	offCode, err := split.OffChain.DeployWithArgs(
		types.Address{1}, types.Address{2},
		uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), revealRounds)
	if err != nil {
		return nil, err
	}
	return []PrivacyRow{
		{"all-on-chain", mono.OnChainCodeBytes, mono.OnChainCalldataBytes, true, 0},
		{"hybrid (honest)", honest.OnChainCodeBytes, honest.OnChainCalldataBytes, false, len(offCode)},
		{"hybrid (dispute)", disputed.OnChainCodeBytes, disputed.OnChainCalldataBytes, true, 0},
	}, nil
}

// FormatPrivacyLeakage renders the comparison.
func FormatPrivacyLeakage(rows []PrivacyRow) string {
	var b strings.Builder
	b.WriteString("Ablation A2 — Public on-chain footprint (privacy surface)\n\n")
	fmt.Fprintf(&b, "%-18s %12s %16s %14s %s\n", "model", "code bytes", "calldata bytes", "private bytes", "secrets visible on-chain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %16d %14d %v\n", r.Model, r.CodeBytes, r.CalldataBytes, r.HiddenBytes, r.SecretsOnChain)
	}
	return b.String()
}

// --- Ablation A3: participant scaling ------------------------------------

// ParticipantsRow reports dispute gas as the signer set grows.
type ParticipantsRow struct {
	N           int
	DeployVIGas uint64
	PerSigGas   uint64 // marginal cost per additional signature
}

// Participants sweeps the pool size: deployVerifiedInstance verifies one
// ecrecover per participant, so dispute cost grows linearly with n.
func Participants(ns []int) ([]ParticipantsRow, error) {
	var rows []ParticipantsRow
	var prev *ParticipantsRow
	for _, n := range ns {
		gas, err := runPoolDispute(n)
		if err != nil {
			return nil, fmt.Errorf("participants n=%d: %w", n, err)
		}
		row := ParticipantsRow{N: n, DeployVIGas: gas}
		if prev != nil && n > prev.N {
			row.PerSigGas = (gas - prev.DeployVIGas) / uint64(n-prev.N)
		}
		rows = append(rows, row)
		prev = &rows[len(rows)-1]
	}
	return rows, nil
}

// runPoolDispute deploys an n-party pool and measures the dispute deploy.
func runPoolDispute(n int) (uint64, error) {
	e := newEnv()
	keys := make([]*secp256k1.PrivateKey, n)
	parties := make([]*hybrid.Participant, n)
	ctorArgs := make([]interface{}, 0, n+1)
	for i := 0; i < n; i++ {
		k, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(uint64(0xF00 + i)))
		if err != nil {
			return 0, err
		}
		keys[i] = k
		parties[i] = hybrid.NewParticipant(k, e.chain, e.net)
		// Fund each party.
		if _, err := e.alice.SendTx(&parties[i].Addr, eth(10), 21_000, nil); err != nil {
			return 0, err
		}
		ctorArgs = append(ctorArgs, parties[i].Addr)
	}
	ctorArgs = append(ctorArgs, uint64(0x5eed))

	split, err := hybrid.Split(hybrid.MultiPartySource(n), "Pool", hybrid.MultiPartyPolicy(600))
	if err != nil {
		return 0, err
	}
	sess, err := hybrid.NewSession(split, parties)
	if err != nil {
		return 0, err
	}
	if _, err := sess.DeployOnChain(8_000_000, ctorArgs...); err != nil {
		return 0, err
	}
	if err := sess.SignAndExchange(ctorArgs...); err != nil {
		return 0, err
	}
	deployR, _, err := sess.Dispute(0)
	if err != nil {
		return 0, err
	}
	return deployR.GasUsed, nil
}

// FormatParticipants renders the scaling table.
func FormatParticipants(rows []ParticipantsRow) string {
	var b strings.Builder
	b.WriteString("Ablation A3 — deployVerifiedInstance gas vs number of participants\n\n")
	fmt.Fprintf(&b, "%-6s %24s %24s\n", "n", "deployVerifiedInstance", "marginal gas per signer")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %24d %24d\n", r.N, r.DeployVIGas, r.PerSigGas)
	}
	return b.String()
}

// --- Ablation A4: security deposits --------------------------------------

// DepositRow analyses the honest resolver's net position with and without
// the security deposit the paper recommends in §IV.
type DepositRow struct {
	DepositWei      uint64 // security deposit per participant (wei, 1-gwei gas price)
	ResolverGasCost uint64 // what the honest party pays to resolve a dispute
	Compensated     bool   // deposit >= resolver cost
}

// DepositCompensation measures dispute-resolution cost and checks which
// deposit sizes make the honest participant whole (paper §IV last
// paragraph: "it should be mandatory for each participant to pay security
// deposit so that the honest participant ... can receive compensation").
func DepositCompensation(revealRounds uint64, depositsWei []uint64) ([]DepositRow, error) {
	lc, err := RunBettingLifecycle(ModeHybrid, revealRounds, true)
	if err != nil {
		return nil, err
	}
	resolverCost := lc.DeployVIGas + lc.ReturnDRGas // gas price 1 wei
	var rows []DepositRow
	for _, d := range depositsWei {
		rows = append(rows, DepositRow{
			DepositWei:      d,
			ResolverGasCost: resolverCost,
			Compensated:     d >= resolverCost,
		})
	}
	return rows, nil
}

// FormatDepositCompensation renders the analysis.
func FormatDepositCompensation(rows []DepositRow) string {
	var b strings.Builder
	b.WriteString("Ablation A4 — Security deposit vs honest resolver's dispute cost\n")
	b.WriteString("(gas price 1 wei; the deposit must cover deployVerifiedInstance + returnDisputeResolution)\n\n")
	fmt.Fprintf(&b, "%-16s %20s %s\n", "deposit (wei)", "resolver cost (wei)", "compensated?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16d %20d %v\n", r.DepositWei, r.ResolverGasCost, r.Compensated)
	}
	return b.String()
}
