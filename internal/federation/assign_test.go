package federation

import (
	"math/rand"
	"testing"

	"onoffchain/internal/types"
)

func addrN(n byte) types.Address {
	return types.BytesToAddress([]byte{0xF0, n})
}

func TestRendezvousRankDeterministicAndComplete(t *testing.T) {
	members := []types.Address{addrN(1), addrN(2), addrN(3)}
	contract := types.BytesToAddress([]byte{0xC0, 0x01})

	r1 := rendezvousRank(members, contract)
	if len(r1) != len(members) {
		t.Fatalf("ranking has %d members, want %d", len(r1), len(members))
	}
	// Permutation of the input must not change the ranking.
	shuffled := []types.Address{addrN(3), addrN(1), addrN(2)}
	r2 := rendezvousRank(shuffled, contract)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ranking depends on input order: %v vs %v", r1, r2)
		}
	}
	// Every member appears exactly once.
	seen := map[types.Address]int{}
	for _, m := range r1 {
		seen[m]++
	}
	for _, m := range members {
		if seen[m] != 1 {
			t.Errorf("member %s appears %d times", m.Hex(), seen[m])
		}
	}
	// Slots agree with the ranking.
	for i, m := range r1 {
		if got := slotOf(members, contract, m); got != i {
			t.Errorf("slotOf(%s) = %d, want %d", m.Hex(), got, i)
		}
	}
	if got := slotOf(members, contract, addrN(99)); got != len(members) {
		t.Errorf("slot of a non-member = %d, want %d", got, len(members))
	}
}

// TestRendezvousSpreadsPrimaries: over many contracts, every member is
// primary for a reasonable share (the whole point of hashing assignment —
// no single tower carries all guard duty).
func TestRendezvousSpreadsPrimaries(t *testing.T) {
	members := []types.Address{addrN(1), addrN(2), addrN(3)}
	counts := map[types.Address]int{}
	rng := rand.New(rand.NewSource(42))
	const contracts = 600
	for i := 0; i < contracts; i++ {
		var c types.Address
		rng.Read(c[:])
		counts[rendezvousRank(members, c)[0]]++
	}
	for _, m := range members {
		if counts[m] < contracts/6 {
			t.Errorf("member %s is primary for only %d/%d contracts — assignment is skewed", m.Hex(), counts[m], contracts)
		}
	}
}

// TestRendezvousStableUnderMembershipChange: removing one member must
// only reassign the contracts it was ranked first for.
func TestRendezvousStableUnderMembershipChange(t *testing.T) {
	members := []types.Address{addrN(1), addrN(2), addrN(3)}
	without3 := []types.Address{addrN(1), addrN(2)}
	rng := rand.New(rand.NewSource(7))
	moved, kept := 0, 0
	for i := 0; i < 400; i++ {
		var c types.Address
		rng.Read(c[:])
		before := rendezvousRank(members, c)[0]
		after := rendezvousRank(without3, c)[0]
		if before == addrN(3) {
			moved++
			continue // had to move somewhere
		}
		if before != after {
			t.Fatalf("contract %s moved primary %s -> %s although its primary stayed in the set",
				c.Hex(), before.Hex(), after.Hex())
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate sample: moved=%d kept=%d", moved, kept)
	}
}
