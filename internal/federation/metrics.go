package federation

import "onoffchain/internal/telemetry"

// metrics is the tower's counter set, backed by a telemetry registry
// under federation_* series names (labeled with the tower so a fleet
// sharing one registry keeps distinct series). Without a configured
// registry the tower keeps a private one — Snapshot always works, only
// the exposition surface is opt-in.
type metrics struct {
	heartbeatsSent *telemetry.Counter
	heartbeatsSeen *telemetry.Counter
	guardsExported *telemetry.Counter // own sessions gossiped to the fleet
	guardsAdopted  *telemetry.Counter // peers' sessions taken under guard
	windowsMirror  *telemetry.Counter // remote window records observed
	vouchesHonored *telemetry.Counter // windows stood down on the owner's verdict hint
	intentsSeen    *telemetry.Counter // peers' dispute intents received
	escalations    *telemetry.Counter // backup filings after the staggered wait
	disputesFiled  *telemetry.Counter // disputes this tower claimed and filed
	disputesWon    *telemetry.Counter // ... that the chain enforced
	dropWarnings   *telemetry.Counter // gossip-loss warnings logged
	sigRejected    *telemetry.Counter // signed-gossip mode: envelopes dropped for bad/missing sender signature
}

func newMetrics(reg *telemetry.Registry, tower string) *metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := func(name string) *telemetry.Counter {
		return reg.Counter(name, "tower", tower)
	}
	return &metrics{
		heartbeatsSent: c("federation_heartbeats_sent_total"),
		heartbeatsSeen: c("federation_heartbeats_seen_total"),
		guardsExported: c("federation_guards_exported_total"),
		guardsAdopted:  c("federation_guards_adopted_total"),
		windowsMirror:  c("federation_windows_mirrored_total"),
		vouchesHonored: c("federation_vouches_honored_total"),
		intentsSeen:    c("federation_intents_seen_total"),
		escalations:    c("federation_escalations_total"),
		disputesFiled:  c("federation_disputes_filed_total"),
		disputesWon:    c("federation_disputes_won_total"),
		dropWarnings:   c("federation_drop_warnings_total"),
		sigRejected:    c("federation_sig_rejected_total"),
	}
}

// Snapshot is a point-in-time copy of one federation tower's counters.
type Snapshot struct {
	HeartbeatsSent uint64
	HeartbeatsSeen uint64
	GuardsExported uint64
	GuardsAdopted  uint64
	WindowsMirror  uint64
	VouchesHonored uint64
	IntentsSeen    uint64
	Escalations    uint64
	DisputesFiled  uint64
	DisputesWon    uint64
	DropWarnings   uint64
	// SigRejected counts envelopes dropped by signed-gossip verification
	// (always 0 when Config.SignGossip is off).
	SigRejected uint64
	// LiveMembers is the heartbeat view at snapshot time (self included).
	LiveMembers int
	// Guards counts contracts currently under this tower's guard.
	Guards int
}

func (m *metrics) snapshot() Snapshot {
	return Snapshot{
		HeartbeatsSent: m.heartbeatsSent.Value(),
		HeartbeatsSeen: m.heartbeatsSeen.Value(),
		GuardsExported: m.guardsExported.Value(),
		GuardsAdopted:  m.guardsAdopted.Value(),
		WindowsMirror:  m.windowsMirror.Value(),
		VouchesHonored: m.vouchesHonored.Value(),
		IntentsSeen:    m.intentsSeen.Value(),
		Escalations:    m.escalations.Value(),
		DisputesFiled:  m.disputesFiled.Value(),
		DisputesWon:    m.disputesWon.Value(),
		DropWarnings:   m.dropWarnings.Value(),
		SigRejected:    m.sigRejected.Value(),
	}
}
