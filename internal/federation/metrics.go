package federation

import "sync"

// metrics is the tower's mutex-guarded counter set; Snapshot publishes a
// consistent copy.
type metrics struct {
	mu sync.Mutex

	heartbeatsSent uint64
	heartbeatsSeen uint64
	guardsExported uint64 // own sessions gossiped to the fleet
	guardsAdopted  uint64 // peers' sessions taken under guard
	windowsMirror  uint64 // remote window records observed
	vouchesHonored uint64 // windows stood down on the owner's verdict hint
	intentsSeen    uint64 // peers' dispute intents received
	escalations    uint64 // backup filings after the staggered wait
	disputesFiled  uint64 // disputes this tower claimed and filed
	disputesWon    uint64 // ... that the chain enforced
	dropWarnings   uint64 // gossip-loss warnings logged
	sigRejected    uint64 // signed-gossip mode: envelopes dropped for bad/missing sender signature
}

func (m *metrics) add(field *uint64, delta uint64) {
	m.mu.Lock()
	*field += delta
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of one federation tower's counters.
type Snapshot struct {
	HeartbeatsSent uint64
	HeartbeatsSeen uint64
	GuardsExported uint64
	GuardsAdopted  uint64
	WindowsMirror  uint64
	VouchesHonored uint64
	IntentsSeen    uint64
	Escalations    uint64
	DisputesFiled  uint64
	DisputesWon    uint64
	DropWarnings   uint64
	// SigRejected counts envelopes dropped by signed-gossip verification
	// (always 0 when Config.SignGossip is off).
	SigRejected uint64
	// LiveMembers is the heartbeat view at snapshot time (self included).
	LiveMembers int
	// Guards counts contracts currently under this tower's guard.
	Guards int
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		HeartbeatsSent: m.heartbeatsSent,
		HeartbeatsSeen: m.heartbeatsSeen,
		GuardsExported: m.guardsExported,
		GuardsAdopted:  m.guardsAdopted,
		WindowsMirror:  m.windowsMirror,
		VouchesHonored: m.vouchesHonored,
		IntentsSeen:    m.intentsSeen,
		Escalations:    m.escalations,
		DisputesFiled:  m.disputesFiled,
		DisputesWon:    m.disputesWon,
		DropWarnings:   m.dropWarnings,
		SigRejected:    m.sigRejected,
	}
}
