package federation

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/hub"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/rollup"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/store"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

// miningModes mirrors the hub suite's sweep: the ONOFFCHAIN_TEST_MINING
// env var restricts the parameterized tests to one block-production
// policy (the CI race matrix gives batch mining its own leg).
func miningModes(tb testing.TB) []string {
	switch v := os.Getenv("ONOFFCHAIN_TEST_MINING"); v {
	case "":
		return []string{"auto", "batch"}
	case "auto", "batch":
		return []string{v}
	default:
		tb.Fatalf("ONOFFCHAIN_TEST_MINING=%q (want auto or batch)", v)
		return nil
	}
}

func fedWorld(tb testing.TB, mode string) (*chain.Chain, *whisper.Network, *secp256k1.PrivateKey) {
	tb.Helper()
	faucetKey, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xFA0CE7))
	if err != nil {
		tb.Fatal(err)
	}
	ccfg := chain.DefaultConfig()
	if mode == "batch" {
		ccfg.AutoMine = false
	}
	// Mirror the hub suite: ONOFFCHAIN_TEST_EXEC=parallel moves the whole
	// federation e2e onto the parallel block executor (CI race matrix leg).
	switch v := os.Getenv("ONOFFCHAIN_TEST_EXEC"); v {
	case "", "serial":
	case "parallel":
		ccfg.Exec = chain.ExecParallel
		ccfg.ExecWorkers = 4
	default:
		tb.Fatalf("ONOFFCHAIN_TEST_EXEC=%q (want serial or parallel)", v)
	}
	c := chain.New(ccfg, map[types.Address]*uint256.Int{
		types.Address(faucetKey.EthereumAddress()): new(uint256.Int).Mul(uint256.NewInt(100_000_000), uint256.NewInt(1e18)),
	})
	if mode == "batch" {
		if err := c.StartMining(500*time.Microsecond, 64); err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(c.StopMining)
	}
	return c, whisper.NewNetwork(c.Now), faucetKey
}

func memberKeys(tb testing.TB, n int) ([]*secp256k1.PrivateKey, []types.Address) {
	tb.Helper()
	keys := make([]*secp256k1.PrivateKey, n)
	addrs := make([]types.Address, n)
	for i := range keys {
		k, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(uint64(0x70_3E_00 + i)))
		if err != nil {
			tb.Fatal(err)
		}
		keys[i] = k
		addrs[i] = types.Address(k.EthereumAddress())
	}
	return keys, addrs
}

func fedRegistry() hub.SpecRegistry {
	return hub.NewSpecRegistry(
		hub.BettingSpec(4, 600, false),
		hub.BettingSpec(4, 600, true),
		hub.AuctionSpec(600, false),
		hub.PoolSpec(3, 600, false),
		hub.PoolSpec(3, 600, true),
	)
}

// fedConfig returns test-speed federation tuning for one member.
func fedConfig(c *chain.Chain, net *whisper.Network, key *secp256k1.PrivateKey, members []types.Address) Config {
	return Config{
		Chain: c, Net: net, Key: key, Members: members,
		Registry:       fedRegistry(),
		HeartbeatEvery: 20 * time.Millisecond, HeartbeatMisses: 3,
		EscalateAfter: 250 * time.Millisecond,
		// Generous intent grace: under -race a filer's verify+file can be
		// slow, and a backup must keep deferring on the fresh intent
		// rather than racing the in-flight transactions.
		IntentGrace: 3 * time.Second,
		VouchWait:   30 * time.Millisecond,
		Logf:        func(string, ...interface{}) {},
	}
}

func waitUntil(tb testing.TB, timeout time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("timed out after %s waiting for %s", timeout, what)
}

// eventCounts tallies lifecycle events per contract address.
type eventCounts struct {
	submitted, finalized, opened, resolved map[types.Address]int
}

func countEvents(c *chain.Chain) *eventCounts {
	ec := &eventCounts{
		submitted: map[types.Address]int{}, finalized: map[types.Address]int{},
		opened: map[types.Address]int{}, resolved: map[types.Address]int{},
	}
	for _, l := range c.FilterLogs(chain.FilterQuery{}) {
		if len(l.Topics) == 0 {
			continue
		}
		switch l.Topics[0] {
		case hybrid.TopicResultSubmitted:
			ec.submitted[l.Address]++
		case hybrid.TopicResultFinalized:
			ec.finalized[l.Address]++
		case hybrid.TopicDisputeOpened:
			ec.opened[l.Address]++
		case hybrid.TopicDisputeResolved:
			ec.resolved[l.Address]++
		}
	}
	return ec
}

// TestFederationFleet is the live-fleet smoke: a hub member plus two
// standalone towers share guard duty over a mixed honest/adversarial
// fleet. Every session terminates correctly, every lie is disputed
// EXACTLY once fleet-wide (one DisputeOpened per adversarial contract),
// honest windows ride the owner's vouch (no redundant filing), and the
// sum of per-tower filings equals the adversary count.
func TestFederationFleet(t *testing.T) {
	for _, mode := range miningModes(t) {
		mode := mode
		t.Run("mining="+mode, func(t *testing.T) { fedFleetRun(t, mode) })
	}
}

func fedFleetRun(t *testing.T, mode string) {
	c, net, faucetKey := fedWorld(t, mode)
	keys, members := memberKeys(t, 3)

	h := hub.New(c, net, faucetKey, hub.Config{Workers: 4})
	hubTower, err := AttachHub(h, fedConfig(c, net, keys[0], members))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Join(fedConfig(c, net, keys[1], members))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Join(fedConfig(c, net, keys[2], members))
	if err != nil {
		t.Fatal(err)
	}

	specs := []*hub.Spec{
		hub.BettingSpec(4, 600, false),
		hub.BettingSpec(4, 600, true),
		hub.AuctionSpec(600, false),
		hub.PoolSpec(3, 600, false),
		hub.BettingSpec(4, 600, true),
		hub.PoolSpec(3, 600, true),
		hub.BettingSpec(4, 600, false),
		hub.AuctionSpec(600, false),
	}
	adversarial := 0
	for _, s := range specs {
		if s.Adversarial {
			adversarial++
		}
	}
	reports := h.Run(specs)
	for i, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("session %d (%s) failed: %v", i, rep.Scenario, rep.Err)
		}
		if specs[i].Adversarial {
			if rep.Stage != hub.StageResolved || !rep.Disputed {
				t.Errorf("session %d (%s): stage=%s disputed=%v, want a resolved dispute", i, rep.Scenario, rep.Stage, rep.Disputed)
			}
		} else if rep.Stage != hub.StageSettled || rep.Disputed {
			t.Errorf("session %d (%s): stage=%s disputed=%v, want a clean settle", i, rep.Scenario, rep.Stage, rep.Disputed)
		}
	}
	h.Stop()
	hubTower.Stop()
	s1.Stop()
	s2.Stop()

	// Chain truth: every lie disputed exactly once, fleet-wide; honest
	// contracts never disputed.
	ec := countEvents(c)
	for i, rep := range reports {
		addr := rep.OnChainAddr
		if specs[i].Adversarial {
			if ec.opened[addr] != 1 || ec.resolved[addr] != 1 || ec.finalized[addr] != 0 {
				t.Errorf("adversarial contract %s: opened=%d resolved=%d finalized=%d, want exactly one enforced dispute",
					addr.Hex(), ec.opened[addr], ec.resolved[addr], ec.finalized[addr])
			}
		} else if ec.opened[addr] != 0 || ec.finalized[addr] != 1 {
			t.Errorf("honest contract %s: opened=%d finalized=%d", addr.Hex(), ec.opened[addr], ec.finalized[addr])
		}
	}
	hm := h.Metrics()
	m0, m1, m2 := hubTower.Metrics(), s1.Metrics(), s2.Metrics()
	filed := m0.DisputesFiled + m1.DisputesFiled + m2.DisputesFiled
	if int(filed) != adversarial {
		t.Errorf("fleet filed %d disputes (hub %d, s1 %d, s2 %d), want %d",
			filed, m0.DisputesFiled, m1.DisputesFiled, m2.DisputesFiled, adversarial)
	}
	if int(m0.GuardsExported) != len(specs) {
		t.Errorf("hub member exported %d guards, want %d", m0.GuardsExported, len(specs))
	}
	if int(m1.GuardsAdopted) != len(specs) || int(m2.GuardsAdopted) != len(specs) {
		t.Errorf("standalone towers adopted %d/%d guards, want %d each", m1.GuardsAdopted, m2.GuardsAdopted, len(specs))
	}
	if m1.VouchesHonored+m2.VouchesHonored == 0 {
		t.Error("no vouches honored: backups re-verified every honest window")
	}
	if hm.IllegalTransitions != 0 {
		t.Errorf("hub took %d illegal transitions", hm.IllegalTransitions)
	}
	t.Logf("fleet: %d sessions (%d adversarial), filings hub=%d s1=%d s2=%d, vouches=%d/%d, deferrals=%d",
		len(specs), adversarial, m0.DisputesFiled, m1.DisputesFiled, m2.DisputesFiled,
		m1.VouchesHonored, m2.VouchesHonored, hm.DisputesDeferred)
}

// submittedContract finds the (single) contract with a ResultSubmitted
// event on chain.
func submittedContract(tb testing.TB, c *chain.Chain) types.Address {
	tb.Helper()
	logs := c.FilterLogs(chain.FilterQuery{Topic: &hybrid.TopicResultSubmitted})
	if len(logs) != 1 {
		tb.Fatalf("%d submissions on chain, want 1", len(logs))
	}
	return logs[0].Address
}

// TestFederationBackupDisputesWhenHubDies is the failover headline: the
// hub (one federation member) is killed the instant a fraudulent
// submission lands, with its challenge window open and no hub tower left
// alive. A standalone backup must escalate and dispute before the
// deadline — exactly once — and a later hub.Recover must find the window
// already enforced and not double-dispute.
func TestFederationBackupDisputesWhenHubDies(t *testing.T) {
	for _, mode := range miningModes(t) {
		mode := mode
		t.Run("mining="+mode, func(t *testing.T) { fedFailoverRun(t, mode) })
	}
}

func fedFailoverRun(t *testing.T, mode string) {
	c, net, faucetKey := fedWorld(t, mode)
	keys, members := memberKeys(t, 3)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var h *hub.Hub
	var killOnce sync.Once
	cfg := hub.Config{Workers: 2, Store: st, StageHook: func(sid uint64, s hub.Stage) bool {
		if s == hub.StageSubmitted {
			killOnce.Do(h.Kill)
		}
		return !h.Crashed()
	}}
	h = hub.New(c, net, faucetKey, cfg)
	hubTower, err := AttachHub(h, fedConfig(c, net, keys[0], members))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Join(fedConfig(c, net, keys[1], members))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Stop()
	s2, err := Join(fedConfig(c, net, keys[2], members))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	spec := hub.BettingSpec(4, 600, true)
	rep := h.Submit(spec).Report()
	if !errors.Is(rep.Err, hub.ErrCrashed) {
		t.Fatalf("session should have crashed at submitted, got stage=%s err=%v", rep.Stage, rep.Err)
	}
	h.Stop()
	hubTower.Kill() // the hub process died: its federation member with it
	hubTower.Stop()

	// The lie is on-chain, the window is open, the owner is dead. A
	// standalone backup must find it (via its adopted guard and its own
	// chain subscription), wait out its escalation slot, and dispute.
	contract := submittedContract(t, c)
	deadline := c.FilterLogs(chain.FilterQuery{Topic: &hybrid.TopicResultSubmitted})[0]
	ev, err := hybrid.DecodeResultSubmitted(deadline)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 20*time.Second, "a backup tower's dispute", func() bool {
		return len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeResolved})) > 0
	})
	if now := c.Now(); now > ev.At+600 {
		t.Errorf("dispute landed at chain time %d, after the deadline %d", now, ev.At+600)
	}
	// The chain event precedes the filer's own bookkeeping by a beat; let
	// the counters catch up before pinning them.
	waitUntil(t, 10*time.Second, "the filing tower's bookkeeping", func() bool {
		return s1.Metrics().DisputesWon+s2.Metrics().DisputesWon == 1
	})
	m1, m2 := s1.Metrics(), s2.Metrics()
	if m1.DisputesFiled+m2.DisputesFiled != 1 {
		t.Errorf("backups filed %d+%d disputes, want exactly one", m1.DisputesFiled, m2.DisputesFiled)
	}
	// Whether the filing was an escalation depends on who the contract
	// hashed to: if the DEAD hub holds slot 0, the filing backup must have
	// waited out its stagger; if a standalone tower is slot 0 itself, it
	// files as primary with no escalation.
	if slotOf(members, contract, members[0]) == 0 && m1.Escalations+m2.Escalations == 0 {
		t.Error("the dead hub was the primary; the filing backup should have recorded an escalation")
	}
	ec := countEvents(c)
	if ec.opened[contract] != 1 || ec.resolved[contract] != 1 || ec.finalized[contract] != 0 {
		t.Fatalf("contract %s: opened=%d resolved=%d finalized=%d, want exactly one enforced dispute",
			contract.Hex(), ec.opened[contract], ec.resolved[contract], ec.finalized[contract])
	}

	// Recover the hub: it must adopt the chain truth (resolved by a peer)
	// and never re-file.
	st.Close()
	st2, err := store.Open(st.Dir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2, rec, err := hub.Recover(st2, c, net, faucetKey, hub.Config{Workers: 2}, hub.NewSpecRegistry(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Stop()
	resumed := rec.Resumed()
	if len(resumed) != 1 {
		t.Fatalf("%d sessions resumed, want 1", len(resumed))
	}
	rep2 := resumed[0].Report()
	if rep2.Err != nil {
		t.Fatalf("recovered session failed: %v", rep2.Err)
	}
	if rep2.Stage != hub.StageResolved || !rep2.Disputed {
		t.Errorf("recovered session: stage=%s disputed=%v, want the peer's resolution adopted", rep2.Stage, rep2.Disputed)
	}
	ec = countEvents(c)
	if ec.opened[contract] != 1 {
		t.Errorf("recovery re-filed: contract %s opened %d times", contract.Hex(), ec.opened[contract])
	}
}

// TestFederationStandaloneRecovery: a standalone tower crashes while
// guarding; the hub is also dead; an adversary pushes a lie while NOBODY
// is alive. A new tower incarnation re-arms from the journal, replays the
// chain events it slept through via chain.LogCursor, and disputes — the
// fraud-while-hub-down property, carried by the federation's own
// durability.
func TestFederationStandaloneRecovery(t *testing.T) {
	c, net, faucetKey := fedWorld(t, "auto")
	keys, members := memberKeys(t, 2)
	fedSt, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var h *hub.Hub
	h = hub.New(c, net, faucetKey, hub.Config{Workers: 1, StageHook: func(sid uint64, s hub.Stage) bool {
		if s == hub.StageExecuted {
			h.Kill()
		}
		return !h.Crashed()
	}})
	hubTower, err := AttachHub(h, fedConfig(c, net, keys[0], members))
	if err != nil {
		t.Fatal(err)
	}
	scfg := fedConfig(c, net, keys[1], members)
	scfg.Store = fedSt
	s1, err := Join(scfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := hub.BettingSpec(4, 600, true)
	rep := h.Submit(spec).Report()
	if !errors.Is(rep.Err, hub.ErrCrashed) || rep.Stage != hub.StageExecuted {
		t.Fatalf("session should crash at executed, got stage=%s err=%v", rep.Stage, rep.Err)
	}
	waitUntil(t, 10*time.Second, "the standalone tower to adopt the guard", func() bool {
		return s1.Metrics().Guards == 1
	})
	h.Stop()
	hubTower.Kill()
	hubTower.Stop()
	s1.Kill() // tower process dies; its journal survives
	s1.Stop()

	// Everybody is dead. The adversary rebuilds its view from the guard
	// state (its own keys — they were circulated during the protocol) and
	// submits the flipped result with no tower alive anywhere.
	recs, err := fedSt.Replay()
	if err != nil {
		t.Fatal(err)
	}
	fs := foldFederation(recs)
	if len(fs.guards) != 1 {
		t.Fatalf("journal folds to %d guards, want 1", len(fs.guards))
	}
	var g *hub.GuardExport
	for _, gg := range fs.guards {
		g = gg
	}
	split, err := hybrid.Split(spec.Source, spec.Contract, spec.Policy)
	if err != nil {
		t.Fatal(err)
	}
	parties := make([]*hybrid.Participant, len(g.Scalars))
	for i, sc := range g.Scalars {
		key, err := secp256k1.PrivateKeyFromBytes(sc)
		if err != nil {
			t.Fatal(err)
		}
		parties[i] = hybrid.NewParticipant(key, c, net)
	}
	sess, err := hybrid.NewSession(split, parties)
	if err != nil {
		t.Fatal(err)
	}
	sess.OnChainAddr = g.Contract
	if sess.Copy, err = hybrid.DecodeSignedCopy(g.CopyEnc); err != nil {
		t.Fatal(err)
	}
	out, err := hybrid.ExecuteOffChain(sess.Copy.Bytecode)
	if err != nil {
		t.Fatal(err)
	}
	lie := uint64(1)
	if out.Result == 1 {
		lie = 0
	}
	if r, err := sess.SubmitResult(len(parties)-1, lie); err != nil || !r.Succeeded() {
		t.Fatalf("adversary's submission did not land: %v", err)
	}
	fraudBlock := c.Height()

	// Restart the tower process on the same journal.
	fedSt.Close()
	fedSt2, err := store.Open(fedSt.Dir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fedSt2.Close()
	if fs.cursor >= fraudBlock {
		t.Fatalf("durable cursor %d should predate the fraud block %d", fs.cursor, fraudBlock)
	}
	scfg2 := fedConfig(c, net, keys[1], members)
	scfg2.Store = fedSt2
	s1b, err := Join(scfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s1b.Stop()

	waitUntil(t, 20*time.Second, "the re-armed tower's dispute", func() bool {
		addr := g.Contract
		return len(c.FilterLogs(chain.FilterQuery{Address: &addr, Topic: &hybrid.TopicDisputeResolved})) > 0
	})
	ec := countEvents(c)
	if ec.opened[g.Contract] != 1 || ec.resolved[g.Contract] != 1 || ec.finalized[g.Contract] != 0 {
		t.Fatalf("contract %s: opened=%d resolved=%d finalized=%d, want exactly one enforced dispute",
			g.Contract.Hex(), ec.opened[g.Contract], ec.resolved[g.Contract], ec.finalized[g.Contract])
	}
	m := s1b.Metrics()
	if m.DisputesFiled != 1 || m.DisputesWon != 1 {
		t.Errorf("re-armed tower filed/won %d/%d disputes, want 1/1", m.DisputesFiled, m.DisputesWon)
	}
}

// TestFederationPartition: the gossip network splits so the two surviving
// towers each believe the other is dead — both believe they are the live
// primary for the fraudulent contract. The full-member escalation slots
// keep their filings time-staggered, and the chain's settled veto stops
// the second filing: the dispute still lands exactly once.
func TestFederationPartition(t *testing.T) {
	c, net, faucetKey := fedWorld(t, "auto")
	keys, members := memberKeys(t, 3)

	var h *hub.Hub
	var killOnce sync.Once
	h = hub.New(c, net, faucetKey, hub.Config{Workers: 2, StageHook: func(sid uint64, s hub.Stage) bool {
		if s == hub.StageSubmitted {
			killOnce.Do(h.Kill)
		}
		return !h.Crashed()
	}})
	hubTower, err := AttachHub(h, fedConfig(c, net, keys[0], members))
	if err != nil {
		t.Fatal(err)
	}
	// Wide escalation slots: the stagger must dwarf scheduling noise so
	// the test pins "second filer hits the settled veto", not a race.
	mk := func(key *secp256k1.PrivateKey) Config {
		cfg := fedConfig(c, net, key, members)
		cfg.EscalateAfter = 1500 * time.Millisecond
		return cfg
	}
	s1, err := Join(mk(keys[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Stop()
	s2, err := Join(mk(keys[2]))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	spec := hub.BettingSpec(4, 600, true)
	rep := h.Submit(spec).Report()
	if !errors.Is(rep.Err, hub.ErrCrashed) {
		t.Fatalf("session should have crashed at submitted, got stage=%s err=%v", rep.Stage, rep.Err)
	}
	h.Stop()
	hubTower.Kill()
	hubTower.Stop()
	contract := submittedContract(t, c)

	// Sever the two survivors from each other (the hub member is dead
	// anyway): a full gossip partition.
	a1, a2 := s1.Self(), s2.Self()
	net.SetLinkFilter(func(from, to types.Address) bool {
		return !(from == a1 && to == a2) && !(from == a2 && to == a1)
	})
	defer net.SetLinkFilter(nil)

	// Heartbeats lapse: each survivor must come to believe it is the
	// contract's primary.
	waitUntil(t, 10*time.Second, "both towers believing they are primary", func() bool {
		return s1.Primary(contract) == a1 && s2.Primary(contract) == a2
	})

	waitUntil(t, 30*time.Second, "the dispute", func() bool {
		return len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeResolved})) > 0
	})
	// Give the slower slot time to run into the settled veto, then check
	// exactly-once. Both towers' slots are distinct members of the full
	// ranking, so the later one must observe the earlier one's settlement.
	slots := []int{s1.Slot(contract), s2.Slot(contract)}
	maxSlot := slots[0]
	if slots[1] > maxSlot {
		maxSlot = slots[1]
	}
	time.Sleep(time.Duration(maxSlot)*1500*time.Millisecond + 500*time.Millisecond)
	ec := countEvents(c)
	if ec.opened[contract] != 1 || ec.resolved[contract] != 1 {
		t.Fatalf("partitioned fleet: opened=%d resolved=%d, want exactly one dispute", ec.opened[contract], ec.resolved[contract])
	}
	m1, m2 := s1.Metrics(), s2.Metrics()
	if m1.DisputesFiled+m2.DisputesFiled != 1 {
		t.Errorf("partitioned towers filed %d+%d disputes, want exactly one", m1.DisputesFiled, m2.DisputesFiled)
	}
	t.Logf("partition: slots s1=%d s2=%d, filings s1=%d s2=%d, escalations s1=%d s2=%d",
		slots[0], slots[1], m1.DisputesFiled, m2.DisputesFiled, m1.Escalations, m2.Escalations)
}

// TestFederationDropWarning: a subscriber that stops draining makes the
// whisper network drop envelopes; the heartbeat loop must notice and log
// a warning (lost heartbeats are otherwise undiagnosable).
func TestFederationDropWarning(t *testing.T) {
	c, net, faucetKey := fedWorld(t, "auto")
	_ = faucetKey
	keys, members := memberKeys(t, 2)

	var mu sync.Mutex
	var warnings []string
	cfg := fedConfig(c, net, keys[0], members)
	cfg.HeartbeatEvery = 2 * time.Millisecond
	cfg.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s1, err := Join(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Stop()

	// A stuck peer: subscribed to the federation topic, never draining.
	stuck := net.NewNode(keys[1])
	_ = stuck.Subscribe(whisper.TopicFromString("federation/guard"))

	waitUntil(t, 20*time.Second, "a gossip drop warning", func() bool {
		return s1.Metrics().DropWarnings > 0
	})
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "dropped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no drop warning logged; got %q", warnings)
	}
}

// TestSignedGossip: with Config.SignGossip the fleet signs every envelope
// and still functions (heartbeats authenticate per-sender), while a
// member that skips the signing discipline — an impersonation stand-in,
// since only per-envelope signatures bind gossip to the claimed sender —
// is dropped and counted.
func TestSignedGossip(t *testing.T) {
	c, net, _ := fedWorld(t, "auto")
	keys, members := memberKeys(t, 3)

	mk := func(key *secp256k1.PrivateKey) Config {
		cfg := fedConfig(c, net, key, members)
		cfg.SignGossip = true
		return cfg
	}
	s0, err := Join(mk(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Stop()
	s1, err := Join(mk(keys[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Stop()

	// Signed heartbeats flow and authenticate: both towers see each other.
	waitUntil(t, 5*time.Second, "signed heartbeats exchanged", func() bool {
		return s0.Metrics().HeartbeatsSeen > 0 && s1.Metrics().HeartbeatsSeen > 0
	})
	if s0.Metrics().SigRejected != 0 || s1.Metrics().SigRejected != 0 {
		t.Fatalf("well-signed fleet rejected envelopes: %d/%d",
			s0.Metrics().SigRejected, s1.Metrics().SigRejected)
	}

	// A third member posts UNSIGNED gossip under the (valid) group key:
	// group-key possession alone must no longer pass.
	rogue := net.NewNode(keys[2])
	topic := whisper.TopicFromString("federation/guard")
	symKey := whisper.SharedTopicKey("federation/guard", members)
	g := &whisper.Gossip{Kind: 0 /* heartbeat */, Seq: 1, Time: 1}
	if _, err := rogue.Post(topic, g.Encode(), whisper.PostOptions{Key: symKey, Unsigned: true}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "unsigned envelope rejected", func() bool {
		return s0.Metrics().SigRejected > 0 && s1.Metrics().SigRejected > 0
	})
}

// TestFederationRollupFleet runs batched settlement under federation
// guard: the hub member hosts the sequencer, and every tower — the hub's
// own plus two standalone backups — is armed on the same rollup registry
// and epoch source. Honest sessions roll up with ZERO per-session
// transactions; each fraudulent leaf is opened against the posted root
// and disputed exactly once fleet-wide.
func TestFederationRollupFleet(t *testing.T) {
	for _, mode := range miningModes(t) {
		mode := mode
		t.Run("mining="+mode, func(t *testing.T) { fedRollupRun(t, mode) })
	}
}

func fedRollupRun(t *testing.T, mode string) {
	c, net, faucetKey := fedWorld(t, mode)
	keys, members := memberKeys(t, 3)

	h := hub.New(c, net, faucetKey, hub.Config{
		Workers: 4,
		Rollup:  &hub.RollupConfig{Depth: 4, EpochAge: 60 * time.Millisecond},
	})
	rreg, rsrc := h.RollupHandles()
	if rreg == nil || rsrc == nil {
		t.Fatal("rollup hub exposes no handles")
	}
	mk := func(k *secp256k1.PrivateKey) Config {
		cfg := fedConfig(c, net, k, members)
		cfg.RollupRegistry = rreg
		cfg.RollupSource = rsrc
		return cfg
	}
	hubTower, err := AttachHub(h, mk(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Join(mk(keys[1]))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Join(mk(keys[2]))
	if err != nil {
		t.Fatal(err)
	}

	specs := []*hub.Spec{
		hub.BettingSpec(4, 600, false),
		hub.BettingSpec(4, 600, true),
		hub.PoolSpec(3, 600, false),
		hub.BettingSpec(4, 600, false),
		hub.PoolSpec(3, 600, true),
		hub.AuctionSpec(600, false),
	}
	adversarial := 0
	for _, s := range specs {
		if s.Adversarial {
			adversarial++
		}
	}
	reports := h.Run(specs)
	for i, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("session %d (%s) failed: %v", i, rep.Scenario, rep.Err)
		}
		if specs[i].Adversarial {
			if rep.Stage != hub.StageResolved || !rep.Disputed {
				t.Errorf("session %d (%s): stage=%s disputed=%v, want a resolved dispute", i, rep.Scenario, rep.Stage, rep.Disputed)
			}
		} else if rep.Stage != hub.StageRolledUp || rep.Disputed {
			t.Errorf("session %d (%s): stage=%s disputed=%v, want rolled-up", i, rep.Scenario, rep.Stage, rep.Disputed)
		}
	}
	h.Stop()
	hubTower.Stop()
	s1.Stop()
	s2.Stop()

	// Chain truth. No session contract ever saw a submit or finalize —
	// settlement commits are epoch posts — and every lie was enforced
	// exactly once despite three towers guarding the same batches.
	ec := countEvents(c)
	for i, rep := range reports {
		addr := rep.OnChainAddr
		if ec.submitted[addr] != 0 || ec.finalized[addr] != 0 {
			t.Errorf("contract %s: submitted=%d finalized=%d, want 0/0 in rollup mode",
				addr.Hex(), ec.submitted[addr], ec.finalized[addr])
		}
		if specs[i].Adversarial {
			if ec.resolved[addr] != 1 {
				t.Errorf("adversarial contract %s: resolved=%d, want exactly 1", addr.Hex(), ec.resolved[addr])
			}
		} else if ec.opened[addr] != 0 || ec.resolved[addr] != 0 {
			t.Errorf("honest contract %s: opened=%d resolved=%d, want 0/0", addr.Hex(), ec.opened[addr], ec.resolved[addr])
		}
	}
	posted, leavesOpened := 0, 0
	for _, l := range c.FilterLogs(chain.FilterQuery{}) {
		if len(l.Topics) == 0 {
			continue
		}
		switch l.Topics[0] {
		case rollup.TopicEpochPosted:
			posted++
		case rollup.TopicLeafOpened:
			leavesOpened++
		}
	}
	if posted == 0 || posted >= len(specs) {
		t.Errorf("epoch posts = %d for %d sessions, want batching in [1, %d)", posted, len(specs), len(specs))
	}
	if leavesOpened != adversarial {
		t.Errorf("leaves opened on chain = %d, adversarial sessions = %d", leavesOpened, adversarial)
	}
	m0, m1, m2 := hubTower.Metrics(), s1.Metrics(), s2.Metrics()
	filed := m0.DisputesFiled + m1.DisputesFiled + m2.DisputesFiled
	if int(filed) != adversarial {
		t.Errorf("fleet filed %d disputes (hub %d, s1 %d, s2 %d), want %d",
			filed, m0.DisputesFiled, m1.DisputesFiled, m2.DisputesFiled, adversarial)
	}
}
