package federation

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/hub"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
)

// TestDisputeTraceCrossTower is the distributed-tracing headline: one
// adversarial session, admitted at a hub that dies at submission, must
// leave a SINGLE trace whose spans — merged from the hub's tracer and the
// two standalone backups' tracers, exactly as cmd/trace merges flight
// files after the cross-process split — cover the hub, chain, whisper,
// federation and tower layers across all three processes, with every
// parent edge resolvable (no orphans) and the hub's admission span as the
// one root.
func TestDisputeTraceCrossTower(t *testing.T) {
	c, net, faucetKey := fedWorld(t, "auto")
	keys, members := memberKeys(t, 3)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// One tracer per logical process, like one flight recorder per process.
	trHub := telemetry.NewTracer(0)
	trT1 := telemetry.NewTracer(0)
	trT2 := telemetry.NewTracer(0)

	var h *hub.Hub
	var killOnce sync.Once
	h = hub.New(c, net, faucetKey, hub.Config{Workers: 2, Store: st, Tracer: trHub,
		StageHook: func(sid uint64, s hub.Stage) bool {
			if s == hub.StageSubmitted {
				killOnce.Do(h.Kill)
			}
			return !h.Crashed()
		}})
	hcfg := fedConfig(c, net, keys[0], members)
	hcfg.Tracer = trHub
	hubTower, err := AttachHub(h, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := fedConfig(c, net, keys[1], members)
	cfg1.Tracer = trT1
	s1, err := Join(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Stop()
	cfg2 := fedConfig(c, net, keys[2], members)
	cfg2.Tracer = trT2
	s2, err := Join(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	tk := h.Submit(hub.BettingSpec(4, 600, true))
	tid := tk.TraceCtx().TraceID
	if tid == 0 {
		t.Fatal("admission minted no trace id")
	}
	rep := tk.Report()
	if !errors.Is(rep.Err, hub.ErrCrashed) {
		t.Fatalf("session should have crashed at submitted, got stage=%s err=%v", rep.Stage, rep.Err)
	}
	h.Stop()
	hubTower.Kill()
	hubTower.Stop()

	contract := submittedContract(t, c)
	waitUntil(t, 20*time.Second, "a backup tower's dispute", func() bool {
		return len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeResolved})) > 0
	})
	// Both backups adopted the dead hub's guard export; their adopt spans
	// land a beat after the chain event, as does the filer's dispute span.
	hasSpan := func(tr *telemetry.Tracer, layer, name string) bool {
		for _, s := range tr.ByTrace(tid) {
			if s.Layer == layer && strings.HasPrefix(s.Name, name) {
				return true
			}
		}
		return false
	}
	waitUntil(t, 10*time.Second, "both backups' adopt spans", func() bool {
		return hasSpan(trT1, "federation", "adopt") && hasSpan(trT2, "federation", "adopt")
	})
	waitUntil(t, 10*time.Second, "the filer's dispute span", func() bool {
		return hasSpan(trT1, "tower", "dispute") || hasSpan(trT2, "tower", "dispute")
	})

	// Merge the three processes' views, exactly as cmd/trace merges their
	// flight-recorder files.
	var merged []telemetry.FlightSpan
	procs := map[string]*telemetry.Tracer{"hub": trHub, "tower-1": trT1, "tower-2": trT2}
	for proc, tr := range procs {
		for _, s := range tr.ByTrace(tid) {
			merged = append(merged, telemetry.FlightSpan{Span: s, Proc: proc})
		}
	}

	byProc := map[string]int{}
	byLayer := map[string]int{}
	for _, s := range merged {
		if s.TraceID != tid {
			t.Fatalf("span %s/%s carries trace %#x, want the single trace %#x", s.Proc, s.Name, s.TraceID, tid)
		}
		byProc[s.Proc]++
		byLayer[s.Layer]++
	}
	for _, layer := range []string{"hub", "chain", "whisper", "federation", "tower"} {
		if byLayer[layer] == 0 {
			t.Errorf("no %q-layer spans in the merged trace (got %v)", layer, byLayer)
		}
	}
	towers := 0
	for _, proc := range []string{"tower-1", "tower-2"} {
		if byProc[proc] > 0 {
			towers++
		}
	}
	if byProc["hub"] == 0 || towers < 2 {
		t.Fatalf("merged trace spans by process = %v, want the hub and both standalone towers", byProc)
	}

	// The causal stitch: one root (the hub's admission span), every parent
	// edge resolvable across process boundaries, nothing dropped.
	tl := telemetry.BuildTimeline(merged, tid)
	if len(tl) != len(merged) {
		t.Fatalf("timeline has %d entries for %d merged spans", len(tl), len(merged))
	}
	if tl[0].Depth != 0 || tl[0].Proc != "hub" || tl[0].Name != "session" {
		t.Fatalf("timeline root is %s/%s at depth %d, want the hub's session span", tl[0].Proc, tl[0].Name, tl[0].Depth)
	}
	roots := 0
	for _, e := range tl {
		if e.Orphan {
			t.Errorf("span %s/%s (id %#x) has unresolvable parent %#x", e.Proc, e.Name, e.SpanID, e.Parent)
		}
		if e.Depth == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("merged timeline has %d roots, want exactly the admission span", roots)
	}
}
