package federation

import (
	"bytes"
	"sort"

	"onoffchain/internal/keccak"
	"onoffchain/internal/types"
)

// Guard assignment: rendezvous (highest-random-weight) hashing of the
// contract address over the member set. Every member computes the same
// ranking independently, with no coordination and no reshuffling storm
// when membership changes — removing one member only reassigns the
// contracts it was ranked first for.
//
// The ranking serves two distinct purposes, deliberately fed by two
// different member sets:
//
//   - The PRIMARY for a window — who files a dispute with zero delay — is
//     the top-ranked member of the LIVE set (per the local tower's
//     heartbeat view). That is what makes a crashed member's guard duty
//     move instantly in everyone else's eyes.
//   - The ESCALATION SLOT — how long a tower waits before filing itself —
//     is the tower's rank in the FULL configured set, regardless of
//     liveness. Slots are partition-independent: two towers whose gossip
//     is severed may both believe they are the live primary, but their
//     full-set slots still differ, so their filings stay time-staggered
//     and the second one hits the chain's settled veto instead of
//     double-filing. Liveness views may be wrong exactly when it matters;
//     slots cannot be.
func rendezvousRank(members []types.Address, contract types.Address) []types.Address {
	type scored struct {
		m     types.Address
		score []byte
	}
	ranked := make([]scored, len(members))
	for i, m := range members {
		ranked[i] = scored{m: m, score: keccak.Sum256Bytes(contract[:], m[:])}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if c := bytes.Compare(ranked[i].score, ranked[j].score); c != 0 {
			return c > 0 // highest score first
		}
		return bytes.Compare(ranked[i].m[:], ranked[j].m[:]) < 0
	})
	out := make([]types.Address, len(ranked))
	for i, r := range ranked {
		out[i] = r.m
	}
	return out
}

// slotOf returns self's escalation slot for the contract: its index in
// the full-member rendezvous ranking (0 = would-be primary were everyone
// alive). Returns len(members) if self is not a configured member.
func slotOf(members []types.Address, contract, self types.Address) int {
	for i, m := range rendezvousRank(members, contract) {
		if m == self {
			return i
		}
	}
	return len(members)
}
