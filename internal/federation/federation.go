// Package federation removes the watchtower as the challenge-window
// protocol's liveness single-point-of-failure: N independent tower
// processes on one chain share guard duty, so any one of them can crash
// without a fraudulent submission outliving its challenge window
// undisputed — the delegated-guardian design of Celer's State Guardian
// Network and POSE's standby watchdogs, built on this repo's own pieces.
//
// Each federated tower wraps a hub.Watchtower. Members gossip signed
// whisper envelopes on a dedicated AES-GCM-encrypted topic (key derived
// from the member set via whisper.SharedTopicKey): membership heartbeats,
// guard state for every session a hub takes under guard (enough for a
// peer to rebuild the session and dispute as the honest party — the
// fleet is one operator's replicas, which is the trust model), challenge
// windows with the owner's verdict hint, and dispute intents.
//
// Dispute duty is assigned per contract by rendezvous hashing (see
// assign.go): the live primary files immediately; every other tower is a
// time-staggered backup whose filing delay is its slot in the FULL member
// ranking. Exactly-once filing stacks four mechanisms: the per-watch
// dispute claim, the gossiped intent (a fresh intent from a live peer
// postpones escalation past the in-flight filing), the staggered slots
// (partition-proof: even two towers that each believe they are primary
// never act at the same instant), and — the unconditional backstop — the
// on-chain settled veto, re-checked immediately before any filing.
// Enforcement is exactly-once no matter what: the generated contract's
// settled flag and deployedAddr guard admit a single enforcement.
//
// Durability: each tower journals membership, guard states, windows and a
// chain cursor to its own internal/store WAL; a restarted member re-arms
// every guard from durable state and replays the chain events it slept
// through with chain.LogCursor. See DESIGN.md §7.
package federation

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/hub"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/rollup"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
	"onoffchain/internal/types"
	"onoffchain/internal/whisper"
)

// Gossip record kinds (whisper.Gossip.Kind) the federation speaks.
const (
	gossipHeartbeat uint8 = iota + 1
	gossipGuard
	gossipWindow
	gossipIntent
)

// Config tunes one federation member.
type Config struct {
	// Chain is the shared chain every tower monitors.
	Chain *chain.Chain
	// Net is the whisper overlay the fleet gossips on.
	Net *whisper.Network
	// Key is the tower's identity: its whisper node and gossip signatures.
	Key *secp256k1.PrivateKey
	// Members is the full configured tower-identity set, self included.
	// All members must agree on it (it keys the shared topic secret).
	Members []types.Address
	// Registry resolves gossiped scenario names so a backup can rebuild a
	// peer's session. A guard whose scenario is missing cannot be adopted
	// (logged loudly — an unguardable window is the failure this package
	// exists to prevent).
	Registry hub.SpecRegistry
	// Store, when set, journals membership/guards/windows/cursor so a
	// restarted member re-arms from durable state. Each tower owns its
	// store exclusively; never share one with a hub WAL.
	Store *store.Store
	// Label names the federation (topic + shared key derivation).
	// Default "guard".
	Label string
	// HeartbeatEvery is the wall-clock heartbeat period (default 100ms);
	// a member is presumed dead after HeartbeatMisses missed beats
	// (default 4). Liveness is wall-clock, not chain-clock: the simulated
	// chain time jumps by whole challenge periods, which says nothing
	// about whether a peer process is alive.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// EscalateAfter is the escalation slot width: a backup in full-member
	// slot k files no earlier than k*EscalateAfter after it first saw the
	// window (default 750ms). Must exceed the fleet's worst-case dispute
	// in-flight time (~2 block intervals under batch mining) or a backup
	// can race a primary's unconfirmed filing.
	EscalateAfter time.Duration
	// IntentGrace extends a backup's deferral after a live peer gossips a
	// dispute intent (default 2*EscalateAfter): the peer's transactions
	// are in flight, give them time to land before escalating past it.
	IntentGrace time.Duration
	// ElectionDelay is the pause between announcing a dispute intent and
	// actually filing (default 150ms): long enough for a rival's intent to
	// arrive, so concurrent would-be filers deterministically yield to
	// whoever announced first (or, on a tie, to the lower rendezvous
	// slot). It buys exactly-once filing at the cost of one gossip
	// round-trip of dispute latency — only when federated; a gateless hub
	// pays nothing.
	ElectionDelay time.Duration
	// VouchWait is how long a primary holds an unvouched remote window
	// before verifying it in its own sandbox (default 50ms) — the owner's
	// verdict hint usually arrives a beat after the chain event, and
	// honoring it saves the fleet a redundant off-chain execution.
	VouchWait time.Duration
	// DisputeWorkers bounds the wrapped tower's verify-and-file workers
	// (standalone towers only; a hub's tower is sized by hub.Config).
	DisputeWorkers int
	// SignGossip additionally signs every gossip envelope with the
	// tower's secp256k1 key (whisper.PostOptions.Unsigned = false) and
	// requires a valid per-sender signature on receive. The shared group
	// key already authenticates traffic as coming from SOME member;
	// per-envelope signatures bind each record to the member that claims
	// to have sent it, so one leaked group key (or a misbehaving member)
	// cannot impersonate the rest of the fleet. PR 4 shipped this off by
	// necessity — per-envelope signing at heartbeat rates measurably
	// taxed hub throughput on the big.Int curve — and the fixed-limb
	// rewrite made it affordable: see DESIGN.md for the measured cost.
	SignGossip bool
	// Logf sinks diagnostics (default: the structured telemetry logger's
	// "federation" layer at Info level).
	Logf func(string, ...interface{})
	// Telemetry, when set, publishes the tower's federation_* series
	// (labeled with the tower's address so a fleet can share one
	// registry). Nil keeps a private registry: Metrics() still works,
	// nothing is exported.
	Telemetry *telemetry.Registry
	// Tracer, when set, records federation-layer spans (guard adoptions,
	// dispute intents, escalations) under the gossiped session IDs, so a
	// session's cross-layer timeline shows fleet activity too.
	Tracer *telemetry.Tracer
	// RollupRegistry and RollupSource, when both set, arm the member's
	// tower for Merkle-batched settlement: EpochPosted events on the
	// registry open batch challenge windows over the epochs RollupSource
	// resolves, and disputes pin their leaf against the posted root
	// before enforcing through the session contract. The sequencer seam:
	// today the source is the hub's sequencer handed across (see
	// hub.Hub.RollupHandles); a future federation-hosted sequencer plugs
	// in here without touching the tower. Exactly-once leaf disputes
	// across members come from the same machinery as per-session mode —
	// the gate's primary election, the registry's on-chain opened-leaf
	// veto, and the session contract's settled flag.
	RollupRegistry *rollup.Registry
	RollupSource   rollup.Source
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Chain == nil || cfg.Net == nil || cfg.Key == nil {
		return cfg, fmt.Errorf("federation: Chain, Net and Key are required")
	}
	self := types.Address(cfg.Key.EthereumAddress())
	found := false
	for _, m := range cfg.Members {
		if m == self {
			found = true
		}
	}
	if !found {
		return cfg, fmt.Errorf("federation: Members must include self (%s)", self.Hex())
	}
	if cfg.Label == "" {
		cfg.Label = "guard"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 4
	}
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = 750 * time.Millisecond
	}
	if cfg.IntentGrace <= 0 {
		cfg.IntentGrace = 2 * cfg.EscalateAfter
	}
	if cfg.ElectionDelay <= 0 {
		cfg.ElectionDelay = 150 * time.Millisecond
	}
	if cfg.VouchWait <= 0 {
		cfg.VouchWait = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = telemetry.Default().Layer("federation").Logf
	}
	return cfg, nil
}

// rivalIntent tracks one peer's dispute intent for one contract: the
// FIRST arrival orders elections (who was in the pipeline earlier), the
// LAST arrival measures freshness (a live filer keeps re-posting while
// its transactions are in flight, and must not "go stale" mid-filing).
type rivalIntent struct {
	first, last time.Time
}

// guardInfo is one contract this tower shares guard duty for.
type guardInfo struct {
	export *hub.GuardExport
	watch  *hub.Watch
	own    bool // guarded by the wrapped hub itself (not adopted)
}

// Tower is one federation member: a wrapped hub.Watchtower plus the
// gossip, liveness and assignment machinery that shares its guard duty
// with the fleet.
type Tower struct {
	cfg      Config
	self     types.Address
	node     *whisper.Node
	topic    whisper.Topic
	symKey   []byte
	tower    *hub.Watchtower
	ownTower bool // Join created it (Stop tears it down); AttachHub wraps
	presence *whisper.Presence
	journal  *journal
	metrics  *metrics
	seq      atomic.Uint64

	// ctx bounds receipt waits of disputes filed for adopted sessions;
	// canceled by Stop and Kill.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	splits    map[string]*hybrid.SplitResult
	guards    map[types.Address]*guardInfo
	vouch     map[types.Address]uint64 // owner's verdict hint per contract
	intents   map[types.Address]map[types.Address]*rivalIntent
	myIntent  map[types.Address]time.Time // when THIS tower announced
	firstSeen map[types.Address]time.Time
	closed    map[types.Address]bool
	killed    bool
	lastDrops int

	inbox    <-chan *whisper.Envelope
	adoptCh  chan adoptReq
	stopCh   chan struct{}
	wg       sync.WaitGroup
	teardown sync.Once
}

// adoptReq queues one guard adoption; fromBlock bounds the catch-up scan
// for submissions that raced the gossip (no event for this contract can
// predate the gossip's arrival, because owners guard before submitting).
type adoptReq struct {
	export    *hub.GuardExport
	fromBlock uint64
}

func wallMillis() uint64 { return uint64(time.Now().UnixMilli()) }

// Join starts a standalone guard tower: a federation member with no hub
// of its own that adopts guard duty for sessions its peers gossip. With a
// Store carrying a previous incarnation's journal, the tower re-arms
// every durable guard and replays the chain events it missed before it
// starts gossiping.
func Join(cfg Config) (*Tower, error) {
	t, err := newTower(cfg)
	if err != nil {
		return nil, err
	}
	w := hub.NewWatchtower(t.cfg.Chain, nil)
	w.SetObserver((*towerObserver)(t))
	w.SetDisputeGate(t.decide)
	w.SetDisputeWorkers(t.cfg.DisputeWorkers)
	w.SetTracer(t.cfg.Tracer)
	if cfg.RollupRegistry != nil && cfg.RollupSource != nil {
		w.ArmRollup(cfg.RollupRegistry, cfg.RollupSource)
	}
	t.tower = w
	t.ownTower = true
	t.start()
	return t, nil
}

// AttachHub federates a hub's own watchtower as a member: the hub's
// sessions are exported to the fleet, and guard duty gossiped by peers is
// adopted onto the hub's tower (as standalone watches that never touch
// the hub's WAL). Call it before the hub accepts sessions — or right
// after hub.Recover, in which case the already-guarded sessions are
// back-filled to the fleet.
func AttachHub(h *hub.Hub, cfg Config) (*Tower, error) {
	t, err := newTower(cfg)
	if err != nil {
		return nil, err
	}
	t.tower = h.Watchtower()
	t.tower.SetObserver((*towerObserver)(t))
	t.tower.SetDisputeGate(t.decide)
	if cfg.RollupRegistry != nil && cfg.RollupSource != nil {
		t.tower.ArmRollup(cfg.RollupRegistry, cfg.RollupSource)
	}
	t.start()
	// Back-fill sessions guarded before the attach (a recovered hub).
	for _, e := range t.tower.Watches() {
		if e.SID() == 0 {
			continue
		}
		obs := (*towerObserver)(t)
		obs.Guarded(e, e.Contract())
		if w := e.OpenWindow(); w != nil {
			obs.WindowOpened(e, *w)
		}
	}
	return t, nil
}

func newTower(c Config) (*Tower, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	self := types.Address(cfg.Key.EthereumAddress())
	t := &Tower{
		cfg:       cfg,
		self:      self,
		node:      cfg.Net.NewNode(cfg.Key),
		topic:     whisper.TopicFromString("federation/" + cfg.Label),
		symKey:    whisper.SharedTopicKey("federation/"+cfg.Label, cfg.Members),
		presence:  whisper.NewPresence(uint64(cfg.HeartbeatEvery.Milliseconds())*uint64(cfg.HeartbeatMisses), wallMillis),
		metrics:   newMetrics(cfg.Telemetry, self.Hex()),
		ctx:       ctx,
		cancel:    cancel,
		splits:    make(map[string]*hybrid.SplitResult),
		guards:    make(map[types.Address]*guardInfo),
		vouch:     make(map[types.Address]uint64),
		intents:   make(map[types.Address]map[types.Address]*rivalIntent),
		myIntent:  make(map[types.Address]time.Time),
		firstSeen: make(map[types.Address]time.Time),
		closed:    make(map[types.Address]bool),
		adoptCh:   make(chan adoptReq, 4096),
		stopCh:    make(chan struct{}),
	}
	t.journal = &journal{st: cfg.Store, logf: cfg.Logf}
	if reg := cfg.Telemetry; reg != nil {
		label := self.Hex()
		reg.GaugeFunc("federation_live_members", func() float64 {
			return float64(len(t.AliveMembers()))
		}, "tower", label)
		reg.GaugeFunc("federation_guards", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.guards))
		}, "tower", label)
		cfg.Net.RegisterMetrics(reg)
	}
	return t, nil
}

// sidOf returns the gossiped session ID guarding contract (0 if this
// tower holds no guard for it), for span attribution.
func (t *Tower) sidOf(contract types.Address) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gi := t.guards[contract]; gi != nil && gi.export != nil {
		return gi.export.SID
	}
	return 0
}

// ctxOf returns the causal trace context of the guard on contract (zero
// when unguarded or untraced), for parenting federation spans.
func (t *Tower) ctxOf(contract types.Address) telemetry.TraceContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gi := t.guards[contract]; gi != nil && gi.watch != nil {
		return gi.watch.TraceCtx()
	}
	return telemetry.TraceContext{}
}

// start re-arms durable state, subscribes to gossip, and launches the
// heartbeat and receiver loops. Called once the wrapped tower exists.
func (t *Tower) start() {
	t.rearm()
	t.inbox = t.node.Subscribe(t.topic)
	t.wg.Add(3)
	go t.receiverLoop()
	go t.adopterLoop()
	go t.heartbeatLoop()
}

// rearm rebuilds guard duty from the journal: fold the store, re-guard
// every non-closed contract, restore its last observed window, then
// replay chain events past the durable cursor — the exact
// replay-before-act recipe hub.Recover uses, scoped to guard duty.
func (t *Tower) rearm() {
	if t.cfg.Store == nil {
		// Nothing durable; still journal the configured membership.
		t.journalMembers(nil)
		return
	}
	recs, err := t.cfg.Store.Replay()
	if err != nil {
		t.cfg.Logf("federation: journal replay failed (starting empty): %v", err)
		t.journalMembers(nil)
		return
	}
	fs := foldFederation(recs)
	t.journalMembers(fs.members)
	t.mu.Lock()
	for c := range fs.closed {
		t.closed[c] = true
	}
	t.mu.Unlock()
	rearmed := 0
	head := t.cfg.Chain.Height()
	for contract, g := range fs.guards {
		if err := t.adopt(g, head, false); err != nil {
			t.cfg.Logf("federation: re-arm %s: %v", contract.Hex(), err)
			continue
		}
		rearmed++
	}
	// Restore the durable windows through the dispute pipeline, then close
	// the outage gap: any submission mined while this tower was down is in
	// blocks (cursor, head], and the guard set above makes its events land
	// on armed watches.
	for contract, rec := range fs.windows {
		w, hint, err := decodeWindowRecord(rec)
		if err != nil {
			continue
		}
		t.mu.Lock()
		gi := t.guards[contract]
		if hint != nil {
			t.vouch[contract] = *hint
		}
		t.mu.Unlock()
		if gi != nil && !gi.own {
			t.tower.RestoreWindow(gi.watch, w)
		}
	}
	cur := t.cfg.Chain.NewLogCursor(chain.FilterQuery{}, fs.cursor+1)
	logs, head := cur.Next()
	t.tower.ReplayLogs(logs)
	t.tower.MarkProcessed(head)
	t.journal.log(&store.Record{Kind: store.KindCursor, U1: head})
	if rearmed > 0 {
		t.cfg.Logf("federation: re-armed %d guards, replayed blocks %d..%d", rearmed, fs.cursor+1, head)
	}
}

// journalMembers records the configured membership (minus what the
// journal already carries).
func (t *Tower) journalMembers(known []types.Address) {
	seen := make(map[types.Address]bool, len(known))
	for _, m := range known {
		seen[m] = true
	}
	for _, m := range t.cfg.Members {
		if !seen[m] {
			m := m
			t.journal.log(&store.Record{Kind: store.KindFedMember, Blob: m[:]})
		}
	}
}

// Self returns the tower's member identity.
func (t *Tower) Self() types.Address { return t.self }

// Watchtower exposes the wrapped tower (for tests and monitoring).
func (t *Tower) Watchtower() *hub.Watchtower { return t.tower }

// Metrics returns the tower's federation counters plus liveness/guard
// gauges.
func (t *Tower) Metrics() Snapshot {
	snap := t.metrics.snapshot()
	snap.LiveMembers = len(t.AliveMembers())
	t.mu.Lock()
	snap.Guards = len(t.guards)
	t.mu.Unlock()
	return snap
}

// AliveMembers returns the members currently considered alive (self
// always is).
func (t *Tower) AliveMembers() []types.Address {
	out := []types.Address{}
	for _, m := range t.cfg.Members {
		if m == t.self || t.presence.Alive(m) {
			out = append(out, m)
		}
	}
	return out
}

// Primary returns the live member assigned to guard the contract first:
// the top of the rendezvous ranking restricted to members this tower
// believes alive.
func (t *Tower) Primary(contract types.Address) types.Address {
	ranked := rendezvousRank(t.AliveMembers(), contract)
	if len(ranked) == 0 {
		return t.self
	}
	return ranked[0]
}

// Slot returns this tower's escalation slot for the contract (rank in
// the FULL member set — see assign.go for why liveness must not shorten
// it).
func (t *Tower) Slot(contract types.Address) int {
	return slotOf(t.cfg.Members, contract, t.self)
}

// Stop winds the member down: loops stop, the gossip subscription is
// released (a dead subscription would absorb every future fleet envelope
// into backpressure drops), and (for Join towers) the wrapped watchtower
// is stopped — also after Kill, which only simulates the death and
// leaves the goroutine reclamation to Stop. Durable state stays on disk
// for the next incarnation.
func (t *Tower) Stop() {
	t.mu.Lock()
	already := t.killed
	t.killed = true
	t.mu.Unlock()
	if !already {
		close(t.stopCh)
		t.cancel()
	}
	t.wg.Wait()
	t.teardown.Do(func() {
		t.node.Unsubscribe(t.topic, t.inbox)
		if t.ownTower {
			t.tower.Stop()
		}
	})
}

// Kill simulates the tower process dying right now: heartbeats cease (the
// fleet sees the lapse), gossip is no longer read, the wrapped tower
// halts (examines and files nothing), and in-flight receipt waits are
// canceled. The journal is left exactly as it was — that is what the next
// incarnation re-arms from. Call Stop afterwards to reclaim goroutines.
func (t *Tower) Kill() {
	t.mu.Lock()
	if t.killed {
		t.mu.Unlock()
		return
	}
	t.killed = true
	t.mu.Unlock()
	close(t.stopCh)
	t.cancel()
	t.tower.Halt()
}

func (t *Tower) post(g *whisper.Gossip) {
	g.Seq = t.seq.Add(1)
	if g.Time == 0 {
		g.Time = wallMillis()
	}
	// Default unsigned: the group key authenticates fleet traffic (see
	// handleEnvelope). SignGossip opts into per-sender envelope
	// signatures, affordable since the fixed-limb secp256k1 rewrite.
	if _, err := t.node.Post(t.topic, g.Encode(), whisper.PostOptions{Key: t.symKey, Unsigned: !t.cfg.SignGossip, Trace: g.TraceCtx()}); err != nil {
		t.cfg.Logf("federation: gossip post failed: %v", err)
	}
}

func (t *Tower) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
			t.post(&whisper.Gossip{Kind: gossipHeartbeat})
			t.metrics.heartbeatsSent.Inc()
			// Re-gossip on a slower cadence than liveness: guard state is
			// KBs per record and only needs to beat the escalation stagger,
			// not the heartbeat TTL.
			if n++; n%4 == 0 {
				t.regossip()
			}
			t.checkDrops()
		}
	}
}

// regossip re-posts dispute-critical records while they are live: the
// whisper overlay is lossy (full subscriber buffers drop envelopes), and
// a one-shot announcement that never arrives would silently unguard a
// window or derail the filing election. Intents are re-posted until their
// window settles; an owner re-posts guard state and the window record
// (with its verdict hint) while one of its own windows is open. Receivers
// dedup everything, so repetition costs only bandwidth — and only during
// the handful of seconds a window is actually open.
func (t *Tower) regossip() {
	t.mu.Lock()
	intents := make([]types.Address, 0, len(t.myIntent))
	for c := range t.myIntent {
		intents = append(intents, c)
	}
	type openGuard struct {
		export *hub.GuardExport
		watch  *hub.Watch
	}
	var open []openGuard
	for _, gi := range t.guards {
		if gi.own {
			open = append(open, openGuard{export: gi.export, watch: gi.watch})
		}
	}
	t.mu.Unlock()
	for _, c := range intents {
		t.postIntent(c)
	}
	for _, og := range open {
		w := og.watch.OpenWindow()
		if w == nil {
			continue // nothing at stake right now
		}
		t.postGuard(og.export)
		t.postWindow(og.watch, *w)
	}
}

// checkDrops surfaces whisper envelope loss: heartbeats and guard gossip
// ride the same network, so growth here is the first sign a member is
// about to be presumed dead for the wrong reason. Only backpressure
// counts — TTL expiry is unrelated traffic (federation gossip never
// carries a TTL), and warning on it would spam every tower for every
// expired session envelope.
func (t *Tower) checkDrops() {
	_, d := t.cfg.Net.DropStats()
	t.mu.Lock()
	grew := d > t.lastDrops
	delta := d - t.lastDrops
	t.lastDrops = d
	t.mu.Unlock()
	if grew {
		t.metrics.dropWarnings.Inc()
		t.cfg.Logf("federation: whisper dropped %d envelope(s) since last check (%d total) — gossip is lossy, heartbeats/guards may be missing", delta, d)
	}
}

func (t *Tower) receiverLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.stopCh:
			return
		case env := <-t.inbox:
			t.handleEnvelope(env)
		}
	}
}

func (t *Tower) handleEnvelope(env *whisper.Envelope) {
	if env.From == t.self || !t.isMember(env.From) {
		return
	}
	// AES-GCM under the fleet's shared key is the authentication gate:
	// only members hold the key, so a successful open proves the envelope
	// is federation traffic (anything else — topic collisions, outsiders —
	// fails here). Without SignGossip the per-envelope ecrecover of
	// Envelope.Verify is skipped: it authenticates the individual sender,
	// which the replica trust model doesn't strictly need. With
	// SignGossip every envelope must also carry a valid signature from
	// the member it claims to be — a forged From (group-key holder
	// impersonating a peer) is dropped here.
	if t.cfg.SignGossip && !env.Verify() {
		t.metrics.sigRejected.Inc()
		t.cfg.Logf("federation: dropped gossip with missing/invalid sender signature claiming %s", env.From.Hex())
		return
	}
	plain, err := whisper.Decrypt(t.symKey, env.Payload)
	if err != nil {
		return
	}
	g, err := whisper.DecodeGossip(plain)
	if err != nil {
		t.cfg.Logf("federation: malformed gossip from %s: %v", env.From.Hex(), err)
		return
	}
	// Any authenticated record proves the peer is alive.
	t.presence.Mark(env.From)
	switch g.Kind {
	case gossipHeartbeat:
		t.metrics.heartbeatsSeen.Inc()
	case gossipGuard:
		t.handleGuardGossip(env.From, g)
	case gossipWindow:
		t.handleWindowGossip(env.From, g)
	case gossipIntent:
		t.handleIntentGossip(env.From, g)
	}
}

func (t *Tower) isMember(a types.Address) bool {
	for _, m := range t.cfg.Members {
		if m == a {
			return true
		}
	}
	return false
}

// handleGuardGossip queues the adoption: rebuilding a session (n-of-n
// signature verification) is too heavy for the receiver loop — stalling
// it under a burst of session starts would drop heartbeats.
func (t *Tower) handleGuardGossip(from types.Address, g *whisper.Gossip) {
	export := &hub.GuardExport{
		SID: g.U3, Scenario: g.Str, Contract: g.Addr,
		ChallengePeriod: g.U1, Honest: int(g.U2),
		CopyEnc: g.Blob, Scalars: g.Blobs,
		TraceID: g.TraceID, TraceSpan: g.TraceSpan,
	}
	select {
	case t.adoptCh <- adoptReq{export: export, fromBlock: t.cfg.Chain.Height()}:
	default:
		t.cfg.Logf("federation: adoption queue full, dropping guard %s (%s) from %s — the window will be UNGUARDED here",
			g.Addr.Hex(), g.Str, from.Hex())
	}
}

func (t *Tower) adopterLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.stopCh:
			return
		case req := <-t.adoptCh:
			if err := t.adopt(req.export, req.fromBlock, true); err != nil {
				t.cfg.Logf("federation: cannot adopt guard %s (%s): %v — the window will be UNGUARDED here",
					req.export.Contract.Hex(), req.export.Scenario, err)
			}
		}
	}
}

// adopt takes a peer's session under this tower's guard: rebuild the
// session from the registry spec + party scalars, re-verify the signed
// copy, register the watch, and sweep the contract's chain history
// through the tower in case the submission beat the gossip here.
func (t *Tower) adopt(g *hub.GuardExport, fromBlock uint64, journalIt bool) error {
	t.mu.Lock()
	if t.closed[g.Contract] || t.guards[g.Contract] != nil {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	adoptStart := time.Now()
	// The gossiped trace context is the ORIGIN hub's root session span; the
	// adoption becomes a child span in this tower's own recorder, and every
	// chain interaction the adopted guard makes parents under the adoption —
	// so a cross-process merge stitches hub and tower files into one tree.
	gctx := telemetry.TraceContext{TraceID: g.TraceID, Span: g.TraceSpan}
	adoptTC := t.cfg.Tracer.Child(gctx)
	sess, err := t.rebuild(g)
	if err != nil {
		return err
	}
	if adoptTC.Valid() {
		sid := g.SID
		for _, p := range sess.Parties {
			p.Trace = func(name string, start time.Time, dur time.Duration, attrs string) {
				t.cfg.Tracer.RecordChild(adoptTC, sid, "chain", name, start, dur, attrs)
			}
		}
		sess.Trace = adoptTC
	}
	watch, err := t.tower.GuardWithTrace(sess, g.Honest, g.Scenario, adoptTC)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.guards[g.Contract] != nil { // lost a benign race
		t.mu.Unlock()
		return nil
	}
	t.guards[g.Contract] = &guardInfo{export: g, watch: watch}
	vouched, hasVouch := t.vouch[g.Contract]
	t.mu.Unlock()
	if hasVouch {
		watch.SeedExpected(vouched)
	}
	if journalIt {
		t.journal.log(guardRecord(g))
	}
	t.metrics.guardsAdopted.Inc()
	t.cfg.Tracer.RecordSpan(adoptTC, gctx.Span, g.SID, "federation", "adopt", adoptStart, time.Since(adoptStart), "tower="+t.self.Hex())
	// The submission may already be on chain (the block raced the
	// adoption queue): replay the contract's events since the gossip
	// arrived through the same idempotent handlers as live delivery.
	// (Re-arm passes the current height here — its own cursor replay
	// covers the outage range.)
	addr := g.Contract
	if logs := t.cfg.Chain.FilterLogs(chain.FilterQuery{Address: &addr, FromBlock: fromBlock}); len(logs) > 0 {
		t.tower.ReplayLogs(logs)
	}
	return nil
}

// rebuild reconstructs a guardable session from exported guard state —
// the same recipe hub.Recover uses from its WAL, from gossip instead.
func (t *Tower) rebuild(g *hub.GuardExport) (*hybrid.Session, error) {
	spec := t.cfg.Registry[g.Scenario]
	if spec == nil {
		return nil, fmt.Errorf("scenario %q not in registry", g.Scenario)
	}
	t.mu.Lock()
	split := t.splits[g.Scenario]
	t.mu.Unlock()
	if split == nil {
		var err error
		split, err = hybrid.Split(spec.Source, spec.Contract, spec.Policy)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		t.splits[g.Scenario] = split
		t.mu.Unlock()
	}
	if len(g.Scalars) != split.Participants {
		return nil, fmt.Errorf("guard has %d party scalars, split expects %d", len(g.Scalars), split.Participants)
	}
	parties := make([]*hybrid.Participant, len(g.Scalars))
	for i, sc := range g.Scalars {
		key, err := secp256k1.PrivateKeyFromBytes(sc)
		if err != nil {
			return nil, fmt.Errorf("party %d scalar: %v", i, err)
		}
		parties[i] = hybrid.NewParticipant(key, t.cfg.Chain, nil)
		parties[i].Ctx = t.ctx
	}
	sess, err := hybrid.NewSession(split, parties)
	if err != nil {
		return nil, err
	}
	sess.OnChainAddr = g.Contract
	cp, err := hybrid.DecodeSignedCopy(g.CopyEnc)
	if err != nil {
		return nil, fmt.Errorf("signed copy: %v", err)
	}
	// The copy's n-of-n signatures are deliberately NOT re-verified here:
	// Session.Dispute verifies them before filing and the on-chain
	// deployVerifiedInstance re-checks them in miners' hands, so a corrupt
	// copy can only waste this tower's gas, never enforce anything — and
	// adopt-time verification would charge every backup two ecrecovers per
	// session on the hot path of a 1000-session fleet.
	sess.Copy = cp
	return sess, nil
}

func (t *Tower) handleWindowGossip(from types.Address, g *whisper.Gossip) {
	t.metrics.windowsMirror.Inc()
	t.mu.Lock()
	if _, ok := t.firstSeen[g.Addr]; !ok {
		t.firstSeen[g.Addr] = time.Now()
	}
	var hint *uint64
	if len(g.Blobs) > 0 && len(g.Blobs[0]) == 8 {
		v := uint64(0)
		for _, b := range g.Blobs[0] {
			v = v<<8 | uint64(b)
		}
		t.vouch[g.Addr] = v
		hint = &v
	}
	var adopted *hub.Watch
	if gi := t.guards[g.Addr]; gi != nil && !gi.own {
		adopted = gi.watch
	}
	t.mu.Unlock()
	w := hub.Window{
		Contract: g.Addr, Submitter: types.BytesToAddress(g.Blob),
		Result: g.U1, OpenedAt: g.U2, Deadline: g.U3,
	}
	if adopted != nil {
		if hint != nil {
			// The owner's verdict makes this tower's own sandbox run
			// unnecessary (see Watch.SeedExpected for why a wrong hint is
			// enforcement-safe): an adopted guard that must file does so
			// without re-executing the bytecode.
			adopted.SeedExpected(*hint)
		}
		// Re-arm the window through the pipeline (idempotent): the chain
		// event may have been mined before this tower adopted the guard —
		// e.g. the first guard gossip was dropped and only the re-gossip
		// landed — in which case the adoption catch-up scan started past
		// it and nothing else would ever drive this window.
		t.tower.RestoreWindow(adopted, w)
	}
	if pc := g.TraceCtx(); pc.Valid() {
		t.cfg.Tracer.EventChild(pc, t.sidOf(g.Addr), "federation", "window_mirror", "from="+from.Hex())
	} else if pc := t.ctxOf(g.Addr); pc.Valid() {
		t.cfg.Tracer.EventChild(pc, t.sidOf(g.Addr), "federation", "window_mirror", "from="+from.Hex())
	}
	t.journal.log(windowRecord(w, hint))
}

func (t *Tower) handleIntentGossip(from types.Address, g *whisper.Gossip) {
	t.metrics.intentsSeen.Inc()
	t.mu.Lock()
	if t.intents[g.Addr] == nil {
		t.intents[g.Addr] = make(map[types.Address]*rivalIntent)
	}
	if ri := t.intents[g.Addr][from]; ri == nil {
		now := time.Now()
		t.intents[g.Addr][from] = &rivalIntent{first: now, last: now}
	} else {
		ri.last = time.Now()
	}
	t.mu.Unlock()
	t.journal.log(&store.Record{Kind: store.KindFedIntent, U1: g.Time, Blob: g.Addr[:], Blobs: [][]byte{from[:]}})
}

// decide is the dispute gate installed on the wrapped watchtower: it
// answers "should THIS tower verify-and-file for this window right now".
// See the package comment for the exactly-once argument.
func (t *Tower) decide(e *hub.Watch, w hub.Window) (hub.GateDecision, time.Duration) {
	now := time.Now()
	contract := w.Contract
	t.mu.Lock()
	fs, ok := t.firstSeen[contract]
	if !ok {
		fs = now
		t.firstSeen[contract] = now
	}
	vouched, hasVouch := t.vouch[contract]
	t.mu.Unlock()

	if e.SID() != 0 {
		// Our own hub's session: the session worker pre-computed the
		// verdict, so vouching costs nothing — an honest own submission
		// needs no guard beyond the finalize the owner will run anyway.
		if exp, ok := e.ExpectedCached(); ok && exp == w.Result {
			return hub.GateStandDown, 0
		}
	} else if hasVouch && vouched == w.Result {
		// The owner's tower vouches the submission matches its verdict.
		// Trusting it saves a redundant sandbox execution per session per
		// backup; the fleet is one operator's replicas, and a LYING vouch
		// would mean the owner defrauding its own session. A fraudulent
		// PARTICIPANT never benefits: the owner's verdict differs from the
		// lie, so no vouch matches and every backup verifies for itself.
		t.metrics.vouchesHonored.Inc()
		return hub.GateStandDown, 0
	}

	slot := t.Slot(contract)
	if slot == 0 {
		if e.SID() == 0 && !hasVouch {
			// Give the owner's vouch a beat before paying for a sandbox
			// run — unless the owner looks dead, in which case verify now.
			if wait := t.cfg.VouchWait - now.Sub(fs); wait > 0 {
				return hub.GateDefer, wait
			}
		}
		// The designated primary skips the election wait: the stagger
		// already orders every backup k*EscalateAfter behind it, so the
		// only theoretical rival is a backup that escalated past a
		// primary it wrongly presumed dead — the settled veto and the
		// contract's own guards keep even that race enforcement-safe. The
		// announcement still goes out so backups extend their deferrals.
		t.announceIntent(contract)
		return hub.GateFile, 0
	}
	// Staggered escalation: slot k enters the election only k*EscalateAfter
	// after first sight, whatever this tower believes about the primary's
	// liveness — heartbeat views diverge under partition, full-member slots
	// do not.
	if wait := fs.Add(time.Duration(slot) * t.cfg.EscalateAfter).Sub(now); wait > 0 {
		return hub.GateDefer, wait
	}
	return t.electFile(contract, slot, now)
}

// electFile is the filing election: announce intent, wait ElectionDelay
// for rival announcements, then file only if no rival is ahead. A rival
// is ahead when its intent arrived before ours was announced (it is
// already in the filing pipeline — towers' first-sight clocks skew, so a
// higher-slot tower can legitimately get there first), or when the
// announcements were concurrent and the rival holds the lower rendezvous
// slot (the deterministic tie-break). Deferrals re-enter here and
// re-evaluate; a rival whose intent goes stale past IntentGrace without a
// settlement is presumed dead mid-filing and loses its claim.
func (t *Tower) electFile(contract types.Address, mySlot int, now time.Time) (hub.GateDecision, time.Duration) {
	t.mu.Lock()
	myAt, announced := t.myIntent[contract]
	if !announced {
		myAt = now
		t.myIntent[contract] = now
	}
	rivalAhead := false
	rivalWins := false
	for m, ri := range t.intents[contract] {
		if m == t.self || now.Sub(ri.last) > t.cfg.IntentGrace {
			continue
		}
		if ri.first.Before(myAt) {
			rivalAhead = true
		} else if slotOf(t.cfg.Members, contract, m) < mySlot {
			rivalWins = true
		}
	}
	t.mu.Unlock()
	if !announced {
		if mySlot > 0 {
			t.metrics.escalations.Inc()
			t.cfg.Tracer.EventChild(t.ctxOf(contract), t.sidOf(contract), "federation", "escalate", fmt.Sprintf("slot=%d tower=%s", mySlot, t.self.Hex()))
		}
		t.announceIntent(contract)
		t.cfg.Tracer.EventChild(t.ctxOf(contract), t.sidOf(contract), "federation", "intent_announced", "tower="+t.self.Hex())
		return hub.GateDefer, t.cfg.ElectionDelay
	}
	if d := t.cfg.ElectionDelay - now.Sub(myAt); d > 0 {
		return hub.GateDefer, d
	}
	if rivalAhead || rivalWins {
		// The rival files; re-check after half a grace — usually the
		// settlement releases this job first.
		return hub.GateDefer, t.cfg.IntentGrace / 2
	}
	return hub.GateFile, 0
}

// announceIntent broadcasts that this tower has authorized a filing for
// the contract, BEFORE the (slow) verification pass: a peer whose own
// escalation timer expires while we are still re-executing the bytecode
// must see a fresh intent and yield, or it would race our in-flight
// filing. The claim path re-announces once the transactions are about to
// go out (receivers keep the first arrival for election ordering).
func (t *Tower) announceIntent(contract types.Address) {
	t.mu.Lock()
	if _, ok := t.myIntent[contract]; !ok {
		t.myIntent[contract] = time.Now()
	}
	t.mu.Unlock()
	t.journal.log(&store.Record{Kind: store.KindFedIntent, U1: wallMillis(), Blob: contract[:], Blobs: [][]byte{t.self[:]}})
	t.postIntent(contract)
}

func (t *Tower) postIntent(contract types.Address) {
	g := &whisper.Gossip{Kind: gossipIntent, Addr: contract, Time: wallMillis()}
	g.SetTraceCtx(t.ctxOf(contract))
	t.post(g)
}

// towerObserver adapts Tower to hub.TowerObserver (a distinct type so the
// observer methods don't pollute the Tower API).
type towerObserver Tower

func (o *towerObserver) t() *Tower { return (*Tower)(o) }

// Guarded exports the hub's own sessions to the fleet the moment they
// come under guard — before any submission can open a window.
func (o *towerObserver) Guarded(e *hub.Watch, contract types.Address) {
	t := o.t()
	if e.SID() == 0 {
		return // an adopted guard echoing back; already recorded
	}
	sess := e.Session()
	scalars := make([][]byte, len(sess.Parties))
	for i, p := range sess.Parties {
		scalars[i] = p.Key.Bytes()
	}
	export := &hub.GuardExport{
		SID: e.SID(), Scenario: e.Scenario(), Contract: contract,
		ChallengePeriod: sess.Split.Policy.ChallengePeriod,
		Honest:          e.Honest(),
		Scalars:         scalars,
		CopyEnc:         sess.Copy.Encode(),
	}
	// Export the session's ROOT trace context (not a child): adopters parent
	// their own spans directly under the hub's root session span, so a
	// dropped/re-gossiped export never leaves a dangling intermediate node.
	if tc := e.TraceCtx(); tc.Valid() {
		export.TraceID, export.TraceSpan = tc.TraceID, tc.Span
		t.cfg.Tracer.EventChild(tc, export.SID, "federation", "guard_export", "tower="+t.self.Hex())
	}
	t.mu.Lock()
	t.guards[contract] = &guardInfo{export: export, watch: e, own: true}
	t.mu.Unlock()
	t.journal.log(guardRecord(export))
	t.postGuard(export)
	t.metrics.guardsExported.Inc()
}

func (t *Tower) postGuard(export *hub.GuardExport) {
	t.post(&whisper.Gossip{
		Kind: gossipGuard, Addr: export.Contract,
		U1: export.ChallengePeriod, U2: uint64(export.Honest), U3: export.SID,
		Str: export.Scenario, Blob: export.CopyEnc, Blobs: export.Scalars,
		TraceID: export.TraceID, TraceSpan: export.TraceSpan,
	})
}

// postWindow gossips an open window with the owner's verdict hint.
func (t *Tower) postWindow(e *hub.Watch, w hub.Window) {
	g := &whisper.Gossip{
		Kind: gossipWindow, Addr: w.Contract,
		U1: w.Result, U2: w.OpenedAt, U3: w.Deadline,
		Blob: w.Submitter[:],
	}
	g.SetTraceCtx(e.TraceCtx())
	if exp, ok := e.ExpectedCached(); ok {
		h := make([]byte, 8)
		for i := 0; i < 8; i++ {
			h[7-i] = byte(exp >> (8 * i))
		}
		g.Blobs = [][]byte{h}
	}
	t.post(g)
}

// WindowOpened journals the window and — for own sessions — gossips it
// with the owner's verdict hint, so backups can vouch instead of
// re-executing.
func (o *towerObserver) WindowOpened(e *hub.Watch, w hub.Window) {
	t := o.t()
	t.mu.Lock()
	if _, ok := t.firstSeen[w.Contract]; !ok {
		t.firstSeen[w.Contract] = time.Now()
	}
	t.mu.Unlock()
	var hint *uint64
	if e.SID() != 0 {
		if exp, ok := e.ExpectedCached(); ok {
			hint = &exp
		}
	}
	t.journal.log(windowRecord(w, hint))
	if e.SID() == 0 {
		return
	}
	t.postWindow(e, w)
}

// WindowClosed retires the contract everywhere: journal, mirrors, maps.
// Settlement is chain-visible, so peers observe it themselves — no gossip.
func (o *towerObserver) WindowClosed(contract types.Address, byDispute bool) {
	t := o.t()
	u1 := uint64(0)
	if byDispute {
		u1 = 1
	}
	t.journal.log(&store.Record{Kind: store.KindFedClosed, U1: u1, Blob: contract[:]})
	t.mu.Lock()
	t.closed[contract] = true
	delete(t.guards, contract)
	delete(t.vouch, contract)
	delete(t.intents, contract)
	delete(t.myIntent, contract)
	delete(t.firstSeen, contract)
	t.mu.Unlock()
}

// DisputeClaimed broadcasts the intent BEFORE the transactions exist:
// backups whose escalation timer is running extend their deferral.
func (o *towerObserver) DisputeClaimed(e *hub.Watch, contract types.Address) {
	t := o.t()
	t.announceIntent(contract)
	t.metrics.disputesFiled.Inc()
}

func (o *towerObserver) DisputeFiled(e *hub.Watch, contract types.Address, enforced bool) {
	if enforced {
		o.t().metrics.disputesWon.Inc()
	}
}

// BlockProcessed advances the durable chain cursor: restart replays from
// here.
func (o *towerObserver) BlockProcessed(n uint64) {
	o.t().journal.log(&store.Record{Kind: store.KindCursor, U1: n})
}
