package federation

import (
	"encoding/binary"
	"fmt"
	"sync"

	"onoffchain/internal/hub"
	"onoffchain/internal/store"
	"onoffchain/internal/types"
)

// journal is the tower's durable state: federation membership, the guard
// states it shares duty for, the challenge windows it has observed (local
// or gossiped), dispute intents, and a chain cursor — enough for a
// restarted member to re-arm every guard and replay the chain events it
// slept through via chain.LogCursor. It reuses the hub's WAL store
// (internal/store) with the federation record kinds; the store is this
// tower's own, never shared with a hub WAL.
type journal struct {
	st   *store.Store // nil: in-memory tower, no durability
	logf func(string, ...interface{})
	mu   sync.Mutex
	err  error // sticky: first append failure stops durability claims
}

// log appends one record; failures are sticky and surfaced once. Unlike
// the hub's WAL (where lost durability must fail sessions), a federation
// tower keeps guarding from memory when its disk dies — protecting open
// windows NOW outranks surviving a restart. Serialized: callers come
// from the tower's event loop, dispute workers, and all three federation
// loops at once.
func (j *journal) log(rec *store.Record) {
	if j.st == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.st.Append(rec); err != nil {
		j.err = err
		j.logf("federation: journal lost durability (guarding continues in memory): %v", err)
	}
}

// guardRecord encodes a guard export. Layout documented on KindFedGuard:
// Blobs[0] = contract, Blobs[1] = signed copy, Blobs[2:] = party scalars.
func guardRecord(g *hub.GuardExport) *store.Record {
	blobs := make([][]byte, 0, len(g.Scalars)+2)
	blobs = append(blobs, g.Contract[:], g.CopyEnc)
	blobs = append(blobs, g.Scalars...)
	return &store.Record{
		Kind: store.KindFedGuard, SID: g.SID,
		U1: g.ChallengePeriod, U2: uint64(g.Honest),
		Str: g.Scenario, Blobs: blobs,
	}
}

func decodeGuardRecord(rec *store.Record) (*hub.GuardExport, error) {
	if len(rec.Blobs) < 3 || len(rec.Blobs[0]) != 20 {
		return nil, fmt.Errorf("federation: malformed guard record")
	}
	return &hub.GuardExport{
		SID: rec.SID, Scenario: rec.Str,
		Contract:        types.BytesToAddress(rec.Blobs[0]),
		ChallengePeriod: rec.U1, Honest: int(rec.U2),
		CopyEnc: rec.Blobs[1], Scalars: rec.Blobs[2:],
	}, nil
}

// windowRecord encodes an observed challenge window; hint, when non-nil,
// is the owner's verdict (Blobs[1], 8 bytes big-endian).
func windowRecord(w hub.Window, hint *uint64) *store.Record {
	blobs := [][]byte{w.Submitter[:]}
	if hint != nil {
		h := make([]byte, 8)
		binary.BigEndian.PutUint64(h, *hint)
		blobs = append(blobs, h)
	}
	return &store.Record{
		Kind: store.KindFedWindow,
		U1:   w.Result, U2: w.OpenedAt, U3: w.Deadline,
		Blob: w.Contract[:], Blobs: blobs,
	}
}

func decodeWindowRecord(rec *store.Record) (w hub.Window, hint *uint64, err error) {
	if len(rec.Blob) != 20 || len(rec.Blobs) < 1 || len(rec.Blobs[0]) != 20 {
		return w, nil, fmt.Errorf("federation: malformed window record")
	}
	w = hub.Window{
		Contract:  types.BytesToAddress(rec.Blob),
		Submitter: types.BytesToAddress(rec.Blobs[0]),
		Result:    rec.U1, OpenedAt: rec.U2, Deadline: rec.U3,
	}
	if len(rec.Blobs) > 1 && len(rec.Blobs[1]) == 8 {
		v := binary.BigEndian.Uint64(rec.Blobs[1])
		hint = &v
	}
	return w, hint, nil
}

// foldState is what a federation store replays to: the latest guard and
// window per contract (minus closed ones), the configured membership it
// saw, and the durable chain cursor.
type foldState struct {
	members []types.Address
	guards  map[types.Address]*hub.GuardExport
	windows map[types.Address]*store.Record // raw, decoded lazily at re-arm
	closed  map[types.Address]bool
	cursor  uint64
}

// foldFederation replays a federation store's record stream. Malformed
// records are skipped (the store's CRC framing already rejects torn
// frames; a skipped guard merely means the tower re-adopts it from
// gossip).
func foldFederation(recs []*store.Record) *foldState {
	fs := &foldState{
		guards:  make(map[types.Address]*hub.GuardExport),
		windows: make(map[types.Address]*store.Record),
		closed:  make(map[types.Address]bool),
	}
	seen := make(map[types.Address]bool)
	for _, rec := range recs {
		switch rec.Kind {
		case store.KindFedMember:
			if len(rec.Blob) == 20 {
				m := types.BytesToAddress(rec.Blob)
				if !seen[m] {
					seen[m] = true
					fs.members = append(fs.members, m)
				}
			}
		case store.KindFedGuard:
			if g, err := decodeGuardRecord(rec); err == nil {
				fs.guards[g.Contract] = g
			}
		case store.KindFedWindow:
			if len(rec.Blob) == 20 {
				fs.windows[types.BytesToAddress(rec.Blob)] = rec
			}
		case store.KindFedClosed:
			if len(rec.Blob) == 20 {
				c := types.BytesToAddress(rec.Blob)
				fs.closed[c] = true
				delete(fs.guards, c)
				delete(fs.windows, c)
			}
		case store.KindCursor:
			if rec.U1 > fs.cursor {
				fs.cursor = rec.U1
			}
		}
	}
	return fs
}
