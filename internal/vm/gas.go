package vm

import "onoffchain/internal/uint256"

// Gas schedule (yellow paper, 2019-era Constantinople/Petersburg values —
// the rule set contemporary with the paper's Kovan measurements).
const (
	GasQuickStep   uint64 = 2
	GasFastestStep uint64 = 3
	GasFastStep    uint64 = 5
	GasMidStep     uint64 = 8
	GasSlowStep    uint64 = 10
	GasExtStep     uint64 = 20

	GasBalance            uint64 = 400
	GasExtCode            uint64 = 700
	GasExtCodeHash        uint64 = 400
	GasSload              uint64 = 200
	GasSstoreSet          uint64 = 20000
	GasSstoreReset        uint64 = 5000
	GasSstoreRefund       uint64 = 15000
	GasJumpdest           uint64 = 1
	GasLog                uint64 = 375
	GasLogTopic           uint64 = 375
	GasLogByte            uint64 = 8
	GasSha3               uint64 = 30
	GasSha3Word           uint64 = 6
	GasCopyWord           uint64 = 3
	GasCall               uint64 = 700
	GasCallValue          uint64 = 9000
	GasCallStipend        uint64 = 2300
	GasNewAccount         uint64 = 25000
	GasCreate             uint64 = 32000
	GasCodeDepositByte    uint64 = 200
	GasSelfdestruct       uint64 = 5000
	GasSelfdestructRefund uint64 = 24000
	GasMemoryWord         uint64 = 3
	GasQuadCoeffDiv       uint64 = 512
	GasExp                uint64 = 10
	GasExpByte            uint64 = 50 // EIP-160

	GasTx            uint64 = 21000
	GasTxCreate      uint64 = 53000
	GasTxDataZero    uint64 = 4
	GasTxDataNonZero uint64 = 68 // pre-Istanbul, matching the paper's era

	GasEcrecover    uint64 = 3000
	GasSha256Base   uint64 = 60
	GasSha256Word   uint64 = 12
	GasIdentityBase uint64 = 15
	GasIdentityWord uint64 = 3

	// MaxCodeSize is the EIP-170 deployed-code limit.
	MaxCodeSize = 24576
	// StackLimit is the maximum EVM stack depth.
	StackLimit = 1024
	// CallCreateDepth is the maximum call/create nesting.
	CallCreateDepth = 1024
	// RefundQuotient caps refunds at gasUsed/2 (pre-London rule).
	RefundQuotient uint64 = 2
)

// constGas is the static gas cost per opcode; dynamic components are
// charged by the interpreter case for the op.
var constGas [256]uint64

func init() {
	set := func(op OpCode, g uint64) { constGas[op] = g }
	set(STOP, 0)
	for _, op := range []OpCode{ADD, SUB, NOT, LT, GT, SLT, SGT, EQ, ISZERO, AND, OR, XOR, BYTE, SHL, SHR, SAR, CALLDATALOAD, MLOAD, MSTORE, MSTORE8, PUSH1} {
		set(op, GasFastestStep)
	}
	for i := PUSH1; i <= PUSH32; i++ {
		set(i, GasFastestStep)
	}
	for i := DUP1; i <= DUP16; i++ {
		set(i, GasFastestStep)
	}
	for i := SWAP1; i <= SWAP16; i++ {
		set(i, GasFastestStep)
	}
	for _, op := range []OpCode{MUL, DIV, SDIV, MOD, SMOD, SIGNEXTEND} {
		set(op, GasFastStep)
	}
	for _, op := range []OpCode{ADDMOD, MULMOD, JUMP} {
		set(op, GasMidStep)
	}
	set(JUMPI, GasSlowStep)
	set(EXP, GasExp)
	set(SHA3, GasSha3)
	set(ADDRESS, GasQuickStep)
	set(BALANCE, GasBalance)
	set(ORIGIN, GasQuickStep)
	set(CALLER, GasQuickStep)
	set(CALLVALUE, GasQuickStep)
	set(CALLDATASIZE, GasQuickStep)
	set(CALLDATACOPY, GasFastestStep)
	set(CODESIZE, GasQuickStep)
	set(CODECOPY, GasFastestStep)
	set(GASPRICE, GasQuickStep)
	set(EXTCODESIZE, GasExtCode)
	set(EXTCODECOPY, GasExtCode)
	set(RETURNDATASIZE, GasQuickStep)
	set(RETURNDATACOPY, GasFastestStep)
	set(EXTCODEHASH, GasExtCodeHash)
	set(BLOCKHASH, GasExtStep)
	set(COINBASE, GasQuickStep)
	set(TIMESTAMP, GasQuickStep)
	set(NUMBER, GasQuickStep)
	set(DIFFICULTY, GasQuickStep)
	set(GASLIMIT, GasQuickStep)
	set(POP, GasQuickStep)
	set(SLOAD, GasSload)
	set(SSTORE, 0) // fully dynamic
	set(PC, GasQuickStep)
	set(MSIZE, GasQuickStep)
	set(GAS, GasQuickStep)
	set(JUMPDEST, GasJumpdest)
	set(LOG0, GasLog)
	set(LOG1, GasLog+GasLogTopic)
	set(LOG2, GasLog+2*GasLogTopic)
	set(LOG3, GasLog+3*GasLogTopic)
	set(LOG4, GasLog+4*GasLogTopic)
	set(CREATE, GasCreate)
	set(CREATE2, GasCreate)
	set(CALL, GasCall)
	set(CALLCODE, GasCall)
	set(DELEGATECALL, GasCall)
	set(STATICCALL, GasCall)
	set(RETURN, 0)
	set(REVERT, 0)
	set(SELFDESTRUCT, GasSelfdestruct)
}

// memoryGasCost returns the total memory cost for a memory of the given
// word size: Cmem(w) = 3w + w^2/512.
func memoryGasCost(words uint64) uint64 {
	return GasMemoryWord*words + words*words/GasQuadCoeffDiv
}

// toWordSize rounds a byte size up to 32-byte words.
func toWordSize(size uint64) uint64 {
	return (size + 31) / 32
}

// IntrinsicGas computes the transaction-level intrinsic gas: the base fee
// plus calldata costs (and the creation surcharge).
func IntrinsicGas(data []byte, isCreate bool) uint64 {
	gas := GasTx
	if isCreate {
		gas = GasTxCreate
	}
	for _, b := range data {
		if b == 0 {
			gas += GasTxDataZero
		} else {
			gas += GasTxDataNonZero
		}
	}
	return gas
}

// expGasCost returns the dynamic cost of EXP for a given exponent.
func expGasCost(exponent *uint256.Int) uint64 {
	return uint64(exponent.ByteLen()) * GasExpByte
}
