package vm

import (
	"onoffchain/internal/keccak"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// stackSpec describes stack consumption per opcode for uniform validation.
type stackSpec struct {
	pop, push int
	defined   bool
}

var stackSpecs [256]stackSpec

func init() {
	def := func(op OpCode, pop, push int) {
		stackSpecs[op] = stackSpec{pop: pop, push: push, defined: true}
	}
	def(STOP, 0, 0)
	for _, op := range []OpCode{ADD, MUL, SUB, DIV, SDIV, MOD, SMOD, EXP, SIGNEXTEND, LT, GT, SLT, SGT, EQ, AND, OR, XOR, BYTE, SHL, SHR, SAR} {
		def(op, 2, 1)
	}
	for _, op := range []OpCode{ADDMOD, MULMOD} {
		def(op, 3, 1)
	}
	for _, op := range []OpCode{ISZERO, NOT, CALLDATALOAD, MLOAD, BALANCE, EXTCODESIZE, EXTCODEHASH, BLOCKHASH} {
		def(op, 1, 1)
	}
	def(SHA3, 2, 1)
	for _, op := range []OpCode{ADDRESS, ORIGIN, CALLER, CALLVALUE, CALLDATASIZE, CODESIZE, GASPRICE, RETURNDATASIZE, COINBASE, TIMESTAMP, NUMBER, DIFFICULTY, GASLIMIT, PC, MSIZE, GAS} {
		def(op, 0, 1)
	}
	for _, op := range []OpCode{CALLDATACOPY, CODECOPY, RETURNDATACOPY} {
		def(op, 3, 0)
	}
	def(EXTCODECOPY, 4, 0)
	def(POP, 1, 0)
	def(MSTORE, 2, 0)
	def(MSTORE8, 2, 0)
	def(SLOAD, 1, 1)
	def(SSTORE, 2, 0)
	def(JUMP, 1, 0)
	def(JUMPI, 2, 0)
	def(JUMPDEST, 0, 0)
	for i := 0; i < 32; i++ {
		def(PUSH1+OpCode(i), 0, 1)
	}
	for i := 0; i < 16; i++ {
		def(DUP1+OpCode(i), i+1, i+2)  // requires i+1, net +1
		def(SWAP1+OpCode(i), i+2, i+2) // requires i+2
	}
	for i := 0; i <= 4; i++ {
		def(LOG0+OpCode(i), 2+i, 0)
	}
	def(CREATE, 3, 1)
	def(CREATE2, 4, 1)
	def(CALL, 7, 1)
	def(CALLCODE, 7, 1)
	def(DELEGATECALL, 6, 1)
	def(STATICCALL, 6, 1)
	def(RETURN, 2, 0)
	def(REVERT, 2, 0)
	def(SELFDESTRUCT, 1, 0)
}

// memExpansion computes the gas to grow memory so [offset, offset+size) is
// addressable, returning the concrete offset/size as uint64.
func memExpansion(mem *Memory, offset, size *uint256.Int) (cost, off, sz uint64, err error) {
	if size.IsZero() {
		if !offset.IsUint64() {
			return 0, 0, 0, nil // zero-size reference may be out of range
		}
		return 0, offset.Uint64(), 0, nil
	}
	if !offset.IsUint64() || !size.IsUint64() {
		return 0, 0, 0, ErrGasUintOverflow
	}
	off, sz = offset.Uint64(), size.Uint64()
	end := off + sz
	if end < off || end > 1<<40 { // 1 TiB hard cap guards the simulator
		return 0, 0, 0, ErrGasUintOverflow
	}
	newWords := toWordSize(end)
	curWords := toWordSize(mem.size())
	if newWords <= curWords {
		return 0, off, sz, nil
	}
	return memoryGasCost(newWords) - memoryGasCost(curWords), off, sz, nil
}

// run executes a contract frame to completion. Write protection is
// governed by evm.static, which STATICCALL sets for the whole subtree.
func (evm *EVM) run(c *Contract) ([]byte, error) {
	evm.depth++
	prevReturnData := evm.returnData
	evm.returnData = nil
	defer func() {
		evm.depth--
		evm.returnData = prevReturnData
	}()
	readOnly := evm.static

	if len(c.Code) == 0 {
		return nil, nil
	}

	st := newStack()
	mem := newMemory()
	var pc uint64
	code := c.Code

	for {
		if pc >= uint64(len(code)) {
			return nil, nil // implicit STOP
		}
		op := OpCode(code[pc])
		spec := stackSpecs[op]
		if !spec.defined {
			return nil, ErrInvalidOpcode
		}
		if st.len() < spec.pop {
			return nil, ErrStackUnderflow
		}
		if st.len()-spec.pop+spec.push > StackLimit {
			return nil, ErrStackOverflow
		}
		if !c.useGas(constGas[op]) {
			return nil, ErrOutOfGas
		}

		switch {
		case op == STOP:
			return nil, nil

		case op == ADD, op == MUL, op == SUB, op == DIV, op == SDIV, op == MOD,
			op == SMOD, op == EXP, op == SIGNEXTEND, op == LT, op == GT,
			op == SLT, op == SGT, op == EQ, op == AND, op == OR, op == XOR,
			op == BYTE, op == SHL, op == SHR, op == SAR:
			x := st.pop()
			y := st.peek(0)
			var z uint256.Int
			switch op {
			case ADD:
				z.Add(&x, y)
			case MUL:
				z.Mul(&x, y)
			case SUB:
				z.Sub(&x, y)
			case DIV:
				z.Div(&x, y)
			case SDIV:
				z.SDiv(&x, y)
			case MOD:
				z.Mod(&x, y)
			case SMOD:
				z.SMod(&x, y)
			case EXP:
				if !c.useGas(expGasCost(y)) {
					return nil, ErrOutOfGas
				}
				z.Exp(&x, y)
			case SIGNEXTEND:
				z.SignExtend(&x, y)
			case LT:
				if x.Lt(y) {
					z.SetOne()
				}
			case GT:
				if x.Gt(y) {
					z.SetOne()
				}
			case SLT:
				if x.Slt(y) {
					z.SetOne()
				}
			case SGT:
				if x.Sgt(y) {
					z.SetOne()
				}
			case EQ:
				if x.Eq(y) {
					z.SetOne()
				}
			case AND:
				z.And(&x, y)
			case OR:
				z.Or(&x, y)
			case XOR:
				z.Xor(&x, y)
			case BYTE:
				z.Byte(&x, y)
			case SHL:
				if x.IsUint64() && x.Uint64() < 256 {
					z.Lsh(y, uint(x.Uint64()))
				}
			case SHR:
				if x.IsUint64() && x.Uint64() < 256 {
					z.Rsh(y, uint(x.Uint64()))
				}
			case SAR:
				if x.IsUint64() && x.Uint64() < 256 {
					z.SRsh(y, uint(x.Uint64()))
				} else if y.Sign() < 0 {
					z.Not(&z) // all ones
				}
			}
			*y = z

		case op == ADDMOD, op == MULMOD:
			x := st.pop()
			y := st.pop()
			m := st.peek(0)
			var z uint256.Int
			if op == ADDMOD {
				z.AddMod(&x, &y, m)
			} else {
				z.MulMod(&x, &y, m)
			}
			*m = z

		case op == ISZERO:
			v := st.peek(0)
			if v.IsZero() {
				v.SetOne()
			} else {
				v.Clear()
			}

		case op == NOT:
			v := st.peek(0)
			v.Not(v)

		case op == SHA3:
			offset := st.pop()
			size := st.pop()
			cost, off, sz, err := memExpansion(mem, &offset, &size)
			if err != nil {
				return nil, err
			}
			words := toWordSize(sz)
			if !c.useGas(cost + words*GasSha3Word) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			h := keccak.Sum256(mem.view(off, sz))
			var z uint256.Int
			z.SetBytes(h[:])
			st.push(&z)

		case op == ADDRESS:
			pushAddress(st, c.Address)
		case op == BALANCE:
			a := st.peek(0)
			addr := wordToAddress(a)
			*a = *evm.State.GetBalance(addr)
		case op == ORIGIN:
			pushAddress(st, evm.Tx.Origin)
		case op == CALLER:
			pushAddress(st, c.CallerAddress)
		case op == CALLVALUE:
			st.push(c.Value)
		case op == CALLDATALOAD:
			v := st.peek(0)
			v.SetBytes(readSlice(c.Input, v, 32))
		case op == CALLDATASIZE:
			st.pushUint64(uint64(len(c.Input)))
		case op == CODESIZE:
			st.pushUint64(uint64(len(c.Code)))
		case op == GASPRICE:
			st.push(evm.Tx.GasPrice)
		case op == RETURNDATASIZE:
			st.pushUint64(uint64(len(evm.returnData)))

		case op == CALLDATACOPY, op == CODECOPY, op == RETURNDATACOPY:
			memOff := st.pop()
			dataOff := st.pop()
			size := st.pop()
			cost, off, sz, err := memExpansion(mem, &memOff, &size)
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost + toWordSize(sz)*GasCopyWord) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			var src []byte
			switch op {
			case CALLDATACOPY:
				src = c.Input
			case CODECOPY:
				src = c.Code
			case RETURNDATACOPY:
				// Strict bounds: out-of-range is an error, not zero fill.
				end := new(uint256.Int).Add(&dataOff, &size)
				if !end.IsUint64() || end.Uint64() > uint64(len(evm.returnData)) {
					return nil, ErrReturnDataOutOfBounds
				}
				src = evm.returnData
			}
			mem.set(off, readSlice(src, &dataOff, sz))

		case op == EXTCODESIZE:
			a := st.peek(0)
			addr := wordToAddress(a)
			a.SetUint64(uint64(evm.State.GetCodeSize(addr)))

		case op == EXTCODECOPY:
			target := st.pop()
			memOff := st.pop()
			codeOff := st.pop()
			size := st.pop()
			cost, off, sz, err := memExpansion(mem, &memOff, &size)
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost + toWordSize(sz)*GasCopyWord) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			extCode := evm.State.GetCode(wordToAddress(&target))
			mem.set(off, readSlice(extCode, &codeOff, sz))

		case op == EXTCODEHASH:
			a := st.peek(0)
			addr := wordToAddress(a)
			if evm.State.Empty(addr) {
				a.Clear()
			} else {
				a.SetBytes(evm.State.GetCodeHash(addr).Bytes())
			}

		case op == BLOCKHASH:
			v := st.peek(0)
			if v.IsUint64() && v.Uint64() < evm.Block.Number && evm.Block.Number-v.Uint64() <= 256 {
				h := evm.Block.BlockHash(v.Uint64())
				v.SetBytes(h.Bytes())
			} else {
				v.Clear()
			}
		case op == COINBASE:
			pushAddress(st, evm.Block.Coinbase)
		case op == TIMESTAMP:
			st.pushUint64(evm.Block.Time)
		case op == NUMBER:
			st.pushUint64(evm.Block.Number)
		case op == DIFFICULTY:
			st.push(evm.Block.Difficulty)
		case op == GASLIMIT:
			st.pushUint64(evm.Block.GasLimit)

		case op == POP:
			st.pop()

		case op == MLOAD:
			offset := st.peek(0)
			cost, off, _, err := memExpansion(mem, offset, uint256.NewInt(32))
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + 32)
			offset.SetBytes(mem.view(off, 32))

		case op == MSTORE:
			offset := st.pop()
			value := st.pop()
			cost, off, _, err := memExpansion(mem, &offset, uint256.NewInt(32))
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + 32)
			word := value.Bytes32()
			mem.set(off, word[:])

		case op == MSTORE8:
			offset := st.pop()
			value := st.pop()
			cost, off, _, err := memExpansion(mem, &offset, uint256.NewInt(1))
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + 1)
			mem.setByte(off, byte(value.Uint64()))

		case op == SLOAD:
			k := st.peek(0)
			key := types.BytesToHash(kBytes(k))
			val := evm.State.GetState(c.Address, key)
			k.SetBytes(val.Bytes())

		case op == SSTORE:
			if readOnly {
				return nil, ErrWriteProtection
			}
			key := st.pop()
			val := st.pop()
			kh := types.BytesToHash(kBytes(&key))
			vh := types.BytesToHash(kBytes(&val))
			current := evm.State.GetState(c.Address, kh)
			// Pre-EIP-1283 rule (the schedule Solidity-era gas intuition and
			// the paper's Table II numbers are based on).
			var cost uint64
			switch {
			case current.IsZero() && !vh.IsZero():
				cost = GasSstoreSet
			default:
				cost = GasSstoreReset
				if !current.IsZero() && vh.IsZero() {
					evm.State.AddRefund(GasSstoreRefund)
				}
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			evm.State.SetState(c.Address, kh, vh)

		case op == JUMP:
			dest := st.pop()
			if !c.validJumpdest(&dest) {
				return nil, ErrInvalidJump
			}
			pc = dest.Uint64()
			continue

		case op == JUMPI:
			dest := st.pop()
			cond := st.pop()
			if !cond.IsZero() {
				if !c.validJumpdest(&dest) {
					return nil, ErrInvalidJump
				}
				pc = dest.Uint64()
				continue
			}

		case op == PC:
			st.pushUint64(pc)
		case op == MSIZE:
			st.pushUint64(mem.size())
		case op == GAS:
			st.pushUint64(c.Gas)
		case op == JUMPDEST:
			// no-op

		case op.IsPush():
			n := uint64(op-PUSH1) + 1
			var v uint256.Int
			start := pc + 1
			end := start + n
			if start > uint64(len(code)) {
				start = uint64(len(code))
			}
			if end > uint64(len(code)) {
				// Zero-fill past end of code.
				buf := make([]byte, n)
				copy(buf, code[start:])
				v.SetBytes(buf)
			} else {
				v.SetBytes(code[start:end])
			}
			st.push(&v)
			pc += n + 1
			continue

		case op >= DUP1 && op <= DUP16:
			st.dup(int(op-DUP1) + 1)

		case op >= SWAP1 && op <= SWAP16:
			st.swap(int(op-SWAP1) + 1)

		case op >= LOG0 && op <= LOG4:
			if readOnly {
				return nil, ErrWriteProtection
			}
			nTopics := int(op - LOG0)
			offset := st.pop()
			size := st.pop()
			topics := make([]types.Hash, nTopics)
			for i := 0; i < nTopics; i++ {
				t := st.pop()
				topics[i] = types.BytesToHash(kBytes(&t))
			}
			cost, off, sz, err := memExpansion(mem, &offset, &size)
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost + sz*GasLogByte) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			evm.State.AddLog(&types.Log{
				Address: c.Address,
				Topics:  topics,
				Data:    mem.get(off, sz),
			})

		case op == CREATE, op == CREATE2:
			if readOnly {
				return nil, ErrWriteProtection
			}
			value := st.pop()
			offset := st.pop()
			size := st.pop()
			var salt uint256.Int
			if op == CREATE2 {
				salt = st.pop()
			}
			cost, off, sz, err := memExpansion(mem, &offset, &size)
			if err != nil {
				return nil, err
			}
			if op == CREATE2 {
				cost += toWordSize(sz) * GasSha3Word // hashing the init code
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			initCode := mem.get(off, sz)
			// EIP-150: forward all but 1/64th.
			forward := c.Gas - c.Gas/64
			c.Gas -= forward
			var ret []byte
			var addr types.Address
			var leftGas uint64
			if op == CREATE {
				ret, addr, leftGas, err = evm.Create(c.Address, initCode, forward, &value)
			} else {
				ret, addr, leftGas, err = evm.Create2(c.Address, initCode, forward, &value, types.BytesToHash(kBytes(&salt)))
			}
			c.Gas += leftGas
			var res uint256.Int
			if err == nil {
				res.SetBytes(addr.Bytes())
				evm.returnData = nil
			} else if err == ErrExecutionReverted {
				evm.returnData = ret
			} else {
				evm.returnData = nil
			}
			st.push(&res)

		case op == CALL, op == CALLCODE, op == DELEGATECALL, op == STATICCALL:
			gasReq := st.pop()
			target := st.pop()
			var value uint256.Int
			if op == CALL || op == CALLCODE {
				value = st.pop()
			}
			inOff := st.pop()
			inSize := st.pop()
			outOff := st.pop()
			outSize := st.pop()

			if op == CALL && readOnly && !value.IsZero() {
				return nil, ErrWriteProtection
			}

			costIn, inO, inS, err := memExpansion(mem, &inOff, &inSize)
			if err != nil {
				return nil, err
			}
			mem.resize(inO + inS)
			costOut, outO, outS, err := memExpansion(mem, &outOff, &outSize)
			if err != nil {
				return nil, err
			}
			extra := costIn + costOut
			if !value.IsZero() {
				extra += GasCallValue
				if op == CALL && !evm.State.Exist(wordToAddress(&target)) {
					extra += GasNewAccount
				}
			}
			if !c.useGas(extra) {
				return nil, ErrOutOfGas
			}
			mem.resize(outO + outS)

			// EIP-150 forwarding cap.
			available := c.Gas - c.Gas/64
			forward := available
			if gasReq.IsUint64() && gasReq.Uint64() < available {
				forward = gasReq.Uint64()
			}
			c.Gas -= forward
			if !value.IsZero() {
				forward += GasCallStipend
			}

			input := mem.get(inO, inS)
			addr := wordToAddress(&target)
			var ret []byte
			var leftGas uint64
			switch op {
			case CALL:
				ret, leftGas, err = evm.Call(c.Address, addr, input, forward, &value)
			case CALLCODE:
				ret, leftGas, err = evm.CallCode(c.Address, addr, input, forward, &value)
			case DELEGATECALL:
				ret, leftGas, err = evm.DelegateCall(c, addr, input, forward)
			case STATICCALL:
				ret, leftGas, err = evm.StaticCall(c.Address, addr, input, forward)
			}
			c.Gas += leftGas
			evm.returnData = ret
			var res uint256.Int
			if err == nil {
				res.SetOne()
			}
			if len(ret) > 0 && outS > 0 {
				n := uint64(len(ret))
				if n > outS {
					n = outS
				}
				mem.set(outO, ret[:n])
			}
			st.push(&res)

		case op == RETURN:
			offset := st.pop()
			size := st.pop()
			cost, off, sz, err := memExpansion(mem, &offset, &size)
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			return mem.get(off, sz), nil

		case op == REVERT:
			offset := st.pop()
			size := st.pop()
			cost, off, sz, err := memExpansion(mem, &offset, &size)
			if err != nil {
				return nil, err
			}
			if !c.useGas(cost) {
				return nil, ErrOutOfGas
			}
			mem.resize(off + sz)
			return mem.get(off, sz), ErrExecutionReverted

		case op == INVALID:
			return nil, ErrInvalidOpcode

		case op == SELFDESTRUCT:
			if readOnly {
				return nil, ErrWriteProtection
			}
			beneficiary := st.pop()
			target := wordToAddress(&beneficiary)
			balance := evm.State.GetBalance(c.Address)
			if !balance.IsZero() && !evm.State.Exist(target) {
				if !c.useGas(GasNewAccount) {
					return nil, ErrOutOfGas
				}
			}
			if !evm.State.HasSelfDestructed(c.Address) {
				evm.State.AddRefund(GasSelfdestructRefund)
			}
			evm.State.AddBalance(target, balance)
			evm.State.SelfDestruct(c.Address)
			return nil, nil

		default:
			return nil, ErrInvalidOpcode
		}
		pc++
	}
}

// readSlice reads size bytes from data at a 256-bit offset with zero fill.
func readSlice(data []byte, offset *uint256.Int, size uint64) []byte {
	out := make([]byte, size)
	if !offset.IsUint64() {
		return out
	}
	off := offset.Uint64()
	if off >= uint64(len(data)) {
		return out
	}
	copy(out, data[off:])
	return out
}

func pushAddress(st *Stack, addr types.Address) {
	var v uint256.Int
	v.SetBytes(addr.Bytes())
	st.push(&v)
}

func wordToAddress(v *uint256.Int) types.Address {
	b := v.Bytes32()
	return types.BytesToAddress(b[12:])
}

func kBytes(v *uint256.Int) []byte {
	b := v.Bytes32()
	return b[:]
}
