package vm

import "fmt"

// OpCode is an EVM opcode.
type OpCode byte

// Opcode definitions (Constantinople-era instruction set).
const (
	STOP       OpCode = 0x00
	ADD        OpCode = 0x01
	MUL        OpCode = 0x02
	SUB        OpCode = 0x03
	DIV        OpCode = 0x04
	SDIV       OpCode = 0x05
	MOD        OpCode = 0x06
	SMOD       OpCode = 0x07
	ADDMOD     OpCode = 0x08
	MULMOD     OpCode = 0x09
	EXP        OpCode = 0x0a
	SIGNEXTEND OpCode = 0x0b

	LT     OpCode = 0x10
	GT     OpCode = 0x11
	SLT    OpCode = 0x12
	SGT    OpCode = 0x13
	EQ     OpCode = 0x14
	ISZERO OpCode = 0x15
	AND    OpCode = 0x16
	OR     OpCode = 0x17
	XOR    OpCode = 0x18
	NOT    OpCode = 0x19
	BYTE   OpCode = 0x1a
	SHL    OpCode = 0x1b
	SHR    OpCode = 0x1c
	SAR    OpCode = 0x1d

	SHA3 OpCode = 0x20

	ADDRESS        OpCode = 0x30
	BALANCE        OpCode = 0x31
	ORIGIN         OpCode = 0x32
	CALLER         OpCode = 0x33
	CALLVALUE      OpCode = 0x34
	CALLDATALOAD   OpCode = 0x35
	CALLDATASIZE   OpCode = 0x36
	CALLDATACOPY   OpCode = 0x37
	CODESIZE       OpCode = 0x38
	CODECOPY       OpCode = 0x39
	GASPRICE       OpCode = 0x3a
	EXTCODESIZE    OpCode = 0x3b
	EXTCODECOPY    OpCode = 0x3c
	RETURNDATASIZE OpCode = 0x3d
	RETURNDATACOPY OpCode = 0x3e
	EXTCODEHASH    OpCode = 0x3f

	BLOCKHASH  OpCode = 0x40
	COINBASE   OpCode = 0x41
	TIMESTAMP  OpCode = 0x42
	NUMBER     OpCode = 0x43
	DIFFICULTY OpCode = 0x44
	GASLIMIT   OpCode = 0x45

	POP      OpCode = 0x50
	MLOAD    OpCode = 0x51
	MSTORE   OpCode = 0x52
	MSTORE8  OpCode = 0x53
	SLOAD    OpCode = 0x54
	SSTORE   OpCode = 0x55
	JUMP     OpCode = 0x56
	JUMPI    OpCode = 0x57
	PC       OpCode = 0x58
	MSIZE    OpCode = 0x59
	GAS      OpCode = 0x5a
	JUMPDEST OpCode = 0x5b

	PUSH1  OpCode = 0x60
	PUSH2  OpCode = 0x61
	PUSH3  OpCode = 0x62
	PUSH4  OpCode = 0x63
	PUSH20 OpCode = 0x73
	PUSH32 OpCode = 0x7f
	DUP1   OpCode = 0x80
	DUP2   OpCode = 0x81
	DUP3   OpCode = 0x82
	DUP4   OpCode = 0x83
	DUP16  OpCode = 0x8f
	SWAP1  OpCode = 0x90
	SWAP2  OpCode = 0x91
	SWAP3  OpCode = 0x92
	SWAP4  OpCode = 0x93
	SWAP16 OpCode = 0x9f

	LOG0 OpCode = 0xa0
	LOG1 OpCode = 0xa1
	LOG2 OpCode = 0xa2
	LOG3 OpCode = 0xa3
	LOG4 OpCode = 0xa4

	CREATE       OpCode = 0xf0
	CALL         OpCode = 0xf1
	CALLCODE     OpCode = 0xf2
	RETURN       OpCode = 0xf3
	DELEGATECALL OpCode = 0xf4
	CREATE2      OpCode = 0xf5
	STATICCALL   OpCode = 0xfa
	REVERT       OpCode = 0xfd
	INVALID      OpCode = 0xfe
	SELFDESTRUCT OpCode = 0xff
)

// IsPush reports whether op is PUSH1..PUSH32.
func (op OpCode) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

var opNames = map[OpCode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", SDIV: "SDIV",
	MOD: "MOD", SMOD: "SMOD", ADDMOD: "ADDMOD", MULMOD: "MULMOD", EXP: "EXP",
	SIGNEXTEND: "SIGNEXTEND", LT: "LT", GT: "GT", SLT: "SLT", SGT: "SGT",
	EQ: "EQ", ISZERO: "ISZERO", AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	BYTE: "BYTE", SHL: "SHL", SHR: "SHR", SAR: "SAR", SHA3: "SHA3",
	ADDRESS: "ADDRESS", BALANCE: "BALANCE", ORIGIN: "ORIGIN", CALLER: "CALLER",
	CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD", CALLDATASIZE: "CALLDATASIZE",
	CALLDATACOPY: "CALLDATACOPY", CODESIZE: "CODESIZE", CODECOPY: "CODECOPY",
	GASPRICE: "GASPRICE", EXTCODESIZE: "EXTCODESIZE", EXTCODECOPY: "EXTCODECOPY",
	RETURNDATASIZE: "RETURNDATASIZE", RETURNDATACOPY: "RETURNDATACOPY",
	EXTCODEHASH: "EXTCODEHASH", BLOCKHASH: "BLOCKHASH", COINBASE: "COINBASE",
	TIMESTAMP: "TIMESTAMP", NUMBER: "NUMBER", DIFFICULTY: "DIFFICULTY",
	GASLIMIT: "GASLIMIT", POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE",
	MSTORE8: "MSTORE8", SLOAD: "SLOAD", SSTORE: "SSTORE", JUMP: "JUMP",
	JUMPI: "JUMPI", PC: "PC", MSIZE: "MSIZE", GAS: "GAS", JUMPDEST: "JUMPDEST",
	LOG0: "LOG0", LOG1: "LOG1", LOG2: "LOG2", LOG3: "LOG3", LOG4: "LOG4",
	CREATE: "CREATE", CALL: "CALL", CALLCODE: "CALLCODE", RETURN: "RETURN",
	DELEGATECALL: "DELEGATECALL", CREATE2: "CREATE2", STATICCALL: "STATICCALL",
	REVERT: "REVERT", INVALID: "INVALID", SELFDESTRUCT: "SELFDESTRUCT",
}

// String returns the mnemonic for the opcode.
func (op OpCode) String() string {
	if name, ok := opNames[op]; ok {
		return name
	}
	if op.IsPush() {
		return fmt.Sprintf("PUSH%d", int(op-PUSH1)+1)
	}
	if op >= DUP1 && op <= DUP16 {
		return fmt.Sprintf("DUP%d", int(op-DUP1)+1)
	}
	if op >= SWAP1 && op <= SWAP16 {
		return fmt.Sprintf("SWAP%d", int(op-SWAP1)+1)
	}
	return fmt.Sprintf("opcode(0x%02x)", byte(op))
}
