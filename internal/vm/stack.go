package vm

import "onoffchain/internal/uint256"

// Stack is the EVM operand stack (max 1024 words). Values are stored by
// value to prevent aliasing between slots.
type Stack struct {
	data []uint256.Int
}

func newStack() *Stack {
	return &Stack{data: make([]uint256.Int, 0, 64)}
}

func (s *Stack) len() int { return len(s.data) }

func (s *Stack) push(v *uint256.Int) {
	s.data = append(s.data, *v)
}

func (s *Stack) pushUint64(v uint64) {
	var z uint256.Int
	z.SetUint64(v)
	s.data = append(s.data, z)
}

// pop removes and returns the top element by value.
func (s *Stack) pop() uint256.Int {
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v
}

// peek returns a pointer to the n'th element from the top (0 = top). The
// pointer is valid until the next push.
func (s *Stack) peek(n int) *uint256.Int {
	return &s.data[len(s.data)-1-n]
}

func (s *Stack) dup(n int) {
	s.data = append(s.data, s.data[len(s.data)-n])
}

func (s *Stack) swap(n int) {
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// Memory is the EVM byte-addressed volatile memory with word-granular
// expansion.
type Memory struct {
	store []byte
}

func newMemory() *Memory { return &Memory{} }

// size returns the current memory size in bytes.
func (m *Memory) size() uint64 { return uint64(len(m.store)) }

// resize grows memory to at least size bytes, rounded up to a word.
func (m *Memory) resize(size uint64) {
	if size <= uint64(len(m.store)) {
		return
	}
	rounded := toWordSize(size) * 32
	grown := make([]byte, rounded)
	copy(grown, m.store)
	m.store = grown
}

// set writes value at [offset, offset+len(value)). Memory must already be
// sized (the interpreter charges and resizes before calling).
func (m *Memory) set(offset uint64, value []byte) {
	if len(value) == 0 {
		return
	}
	copy(m.store[offset:offset+uint64(len(value))], value)
}

// setByte writes a single byte.
func (m *Memory) setByte(offset uint64, b byte) {
	m.store[offset] = b
}

// get returns a copy of memory [offset, offset+size).
func (m *Memory) get(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	out := make([]byte, size)
	copy(out, m.store[offset:offset+size])
	return out
}

// view returns a direct slice of memory (no copy); caller must not retain
// it across resizes.
func (m *Memory) view(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	return m.store[offset : offset+size]
}
