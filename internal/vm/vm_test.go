package vm

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"onoffchain/internal/keccak"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/state"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

func testEVM() (*EVM, *state.StateDB) {
	st := state.New()
	evm := NewEVM(BlockContext{
		Coinbase: types.BytesToAddress([]byte{0xcb}),
		Number:   100,
		Time:     1_000_000,
		GasLimit: 8_000_000,
	}, TxContext{
		Origin:   types.BytesToAddress([]byte{0x0a}),
		GasPrice: uint256.NewInt(1),
	}, st)
	return evm, st
}

// asm is a minimal assembler for tests: byte values are emitted verbatim.
func asm(parts ...interface{}) []byte {
	var out []byte
	for _, p := range parts {
		switch v := p.(type) {
		case OpCode:
			out = append(out, byte(v))
		case byte:
			out = append(out, v)
		case int:
			out = append(out, byte(v))
		case []byte:
			out = append(out, v...)
		default:
			panic("asm: unsupported part")
		}
	}
	return out
}

// push1 emits PUSH1 v.
func push1(v byte) []byte { return []byte{byte(PUSH1), v} }

// deploy installs code at a fixed address and funds the caller.
func deploy(st *state.StateDB, addrByte byte, code []byte) types.Address {
	addr := types.BytesToAddress([]byte{addrByte})
	st.SetCode(addr, code)
	return addr
}

var caller = types.BytesToAddress([]byte{0x0a})

func TestArithmeticReturn(t *testing.T) {
	evm, st := testEVM()
	// return 2+3: PUSH1 3, PUSH1 2, ADD, PUSH1 0, MSTORE, PUSH1 32, PUSH1 0, RETURN
	code := asm(push1(3), push1(2), ADD, push1(0), MSTORE, push1(32), push1(0), RETURN)
	target := deploy(st, 0x20, code)
	ret, _, err := evm.Call(caller, target, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 5 {
		t.Errorf("2+3 = %s", got)
	}
}

func TestLoopSum(t *testing.T) {
	evm, st := testEVM()
	// sum = 0; i = 10; while i != 0 { sum += i; i-- }; return sum  (55)
	code := asm(
		push1(0),                       // sum
		push1(10),                      // i                                  stack: [sum, i]
		JUMPDEST,                       // loop @ pc=4
		DUP1, ISZERO, push1(21), JUMPI, // if i==0 goto end(pc=21)
		DUP1, SWAP2, ADD, SWAP1, // sum += i
		push1(1), SWAP1, SUB, // i--
		push1(4), JUMP,
		JUMPDEST, // end @ pc=21
		POP, push1(0), MSTORE, push1(32), push1(0), RETURN,
	)
	target := deploy(st, 0x21, code)
	ret, _, err := evm.Call(caller, target, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 55 {
		t.Errorf("sum 1..10 = %s, want 55", got)
	}
}

func TestStorageAndRefund(t *testing.T) {
	evm, st := testEVM()
	// SSTORE slot1=7 then read it back and return.
	code := asm(
		push1(7), push1(1), SSTORE,
		push1(1), SLOAD, push1(0), MSTORE,
		push1(32), push1(0), RETURN,
	)
	target := deploy(st, 0x22, code)
	ret, left, err := evm.Call(caller, target, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 7 {
		t.Errorf("sload = %s", got)
	}
	used := 100000 - left
	if used < GasSstoreSet {
		t.Errorf("gas used %d less than sstore set cost", used)
	}

	// Clearing the slot must add a refund.
	clearCode := asm(push1(0), push1(1), SSTORE, STOP)
	target2 := deploy(st, 0x23, clearCode)
	st.SetState(target2, types.BytesToHash([]byte{1}), types.BytesToHash([]byte{9}))
	st.Finalise()
	_, _, err = evm.Call(caller, target2, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.GetRefund() != GasSstoreRefund {
		t.Errorf("refund = %d, want %d", st.GetRefund(), GasSstoreRefund)
	}
}

func TestInvalidJumpAndStackErrors(t *testing.T) {
	evm, st := testEVM()
	target := deploy(st, 0x24, asm(push1(3), JUMP, STOP)) // pc 3 is not JUMPDEST
	if _, _, err := evm.Call(caller, target, nil, 100000, nil); err != ErrInvalidJump {
		t.Errorf("err = %v, want invalid jump", err)
	}
	// Jump into PUSH data must be rejected even if the byte equals JUMPDEST.
	target2 := deploy(st, 0x25, asm(push1(2), JUMP, byte(JUMPDEST), STOP))
	// pc=2 is the PUSH1 immediate... craft explicitly: PUSH1 0x5b sits at pc 0-1.
	target2 = deploy(st, 0x25, asm(byte(PUSH1), byte(JUMPDEST), push1(1), JUMP, STOP))
	// jump dest = 1 → inside push data
	if _, _, err := evm.Call(caller, target2, nil, 100000, nil); err != ErrInvalidJump {
		t.Errorf("push-data jump err = %v", err)
	}
	target3 := deploy(st, 0x26, asm(ADD, STOP))
	if _, _, err := evm.Call(caller, target3, nil, 100000, nil); err != ErrStackUnderflow {
		t.Errorf("underflow err = %v", err)
	}
}

func TestOutOfGasConsumesAll(t *testing.T) {
	evm, st := testEVM()
	// Infinite loop.
	target := deploy(st, 0x27, asm(JUMPDEST, push1(0), JUMP))
	_, left, err := evm.Call(caller, target, nil, 5000, nil)
	if err != ErrOutOfGas {
		t.Fatalf("err = %v", err)
	}
	if left != 0 {
		t.Errorf("leftover gas %d after OOG", left)
	}
}

func TestRevertPreservesGasAndRevertsState(t *testing.T) {
	evm, st := testEVM()
	// SSTORE then REVERT with 4-byte message from memory.
	code := asm(
		push1(9), push1(1), SSTORE,
		push1(0xAB), push1(0), MSTORE8,
		push1(1), push1(0), REVERT,
	)
	target := deploy(st, 0x28, code)
	ret, left, err := evm.Call(caller, target, nil, 100000, nil)
	if err != ErrExecutionReverted {
		t.Fatalf("err = %v", err)
	}
	if len(ret) != 1 || ret[0] != 0xAB {
		t.Errorf("revert data = %x", ret)
	}
	if left == 0 {
		t.Error("revert consumed all gas")
	}
	if !st.GetState(target, types.BytesToHash([]byte{1})).IsZero() {
		t.Error("state not reverted")
	}
}

func TestNestedCallAndReturnData(t *testing.T) {
	evm, st := testEVM()
	// Callee: returns 0x2a.
	callee := deploy(st, 0x30, asm(push1(0x2a), push1(0), MSTORE, push1(32), push1(0), RETURN))
	// Caller: CALL callee, then RETURNDATACOPY result to mem and return it.
	code := asm(
		push1(0), push1(0), push1(0), push1(0), push1(0), // ret/args
		push1(0x30),                             // address
		push1(255), byte(PUSH1), 0xff, POP, POP, // gas (simplified below)
	)
	_ = code
	callerCode := asm(
		push1(32), push1(0), // retSize, retOffset
		push1(0), push1(0), // argsSize, argsOffset
		push1(0),                // value
		push1(0x30),             // to
		byte(PUSH2), 0xff, 0xff, // gas
		CALL,
		POP,
		RETURNDATASIZE, push1(0), push1(0x40), RETURNDATACOPY, // copy to 0x40
		RETURNDATASIZE, push1(0x40), RETURN,
	)
	target := deploy(st, 0x31, callerCode)
	ret, _, err := evm.Call(caller, target, nil, 200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 0x2a {
		t.Errorf("nested call returned %s", got)
	}
	_ = callee
}

func TestStaticCallBlocksWrites(t *testing.T) {
	evm, st := testEVM()
	// Callee tries to SSTORE.
	callee := deploy(st, 0x32, asm(push1(1), push1(1), SSTORE, STOP))
	// Caller STATICCALLs callee and returns the success flag.
	code := asm(
		push1(0), push1(0), push1(0), push1(0),
		push1(0x32),
		byte(PUSH2), 0xff, 0xff,
		STATICCALL,
		push1(0), MSTORE, push1(32), push1(0), RETURN,
	)
	target := deploy(st, 0x33, code)
	ret, _, err := evm.Call(caller, target, nil, 200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Errorf("static call with SSTORE succeeded: %s", got)
	}
	if !st.GetState(callee, types.BytesToHash([]byte{1})).IsZero() {
		t.Error("write leaked through staticcall")
	}
}

func TestStaticContextPropagatesThroughCall(t *testing.T) {
	evm, st := testEVM()
	// inner: SSTORE
	deploy(st, 0x34, asm(push1(1), push1(1), SSTORE, STOP))
	// middle: plain CALL to inner
	deploy(st, 0x35, asm(
		push1(0), push1(0), push1(0), push1(0), push1(0),
		push1(0x34),
		byte(PUSH2), 0xff, 0xff,
		CALL,
		push1(0), MSTORE, push1(32), push1(0), RETURN,
	))
	// outer: STATICCALL middle, return middle's success word
	outer := deploy(st, 0x36, asm(
		push1(32), push1(0), push1(0), push1(0),
		push1(0x35),
		byte(PUSH2), 0xff, 0xff,
		STATICCALL,
		POP,
		push1(32), push1(0), RETURN,
	))
	ret, _, err := evm.Call(caller, outer, nil, 300000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// middle's CALL to inner must have failed (0) because the static
	// context propagates.
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Errorf("nested write inside static context succeeded: %s", got)
	}
	if !st.GetState(types.BytesToAddress([]byte{0x34}), types.BytesToHash([]byte{1})).IsZero() {
		t.Error("write survived static context")
	}
}

func TestCreateFromContract(t *testing.T) {
	evm, st := testEVM()
	// init code: returns runtime code [0x60,0x2a,...] that returns 42.
	runtime := asm(push1(0x2a), push1(0), MSTORE, push1(32), push1(0), RETURN)
	// init: CODECOPY runtime (at offset 12 in init code) to mem 0, RETURN it.
	init := asm(
		push1(byte(len(runtime))), push1(12), push1(0), CODECOPY,
		push1(byte(len(runtime))), push1(0), RETURN,
	)
	if len(init) != 12 {
		t.Fatalf("init length %d, update offsets", len(init))
	}
	initFull := append(init, runtime...)
	// Creator contract: CODECOPY initFull (trailing data at offset 16) into
	// memory and CREATE.
	creatorCode := asm(
		push1(byte(len(initFull))), push1(16), push1(0), CODECOPY, // 8 bytes
		push1(byte(len(initFull))), push1(0), push1(0), CREATE, // 7 bytes +1
		push1(0), MSTORE, push1(32), push1(0), RETURN,
	)
	// creatorCode layout: first 15 bytes of ops before the data? Compute:
	// 4*2 (codecopy pushes) = 6 +1 = 7? Let's just assert offset 16 matches:
	// ops: PUSH1 x2 ... CODECOPY(1) = 2+2+2+1 = 7; CREATE section 2+2+2+1 = 7
	// → 14; MSTORE section starts at 14. The data offset must be where we
	// append initFull. Rebuild with explicit offset:
	prefixLen := 7 + 7 + 2 + 1 + 2 + 2 + 1 // codecopy + create + mstore + ret
	creatorCode = asm(
		push1(byte(len(initFull))), push1(byte(prefixLen)), push1(0), CODECOPY,
		push1(0), push1(0), push1(byte(len(initFull))), SWAP2, POP, CREATE,
	)
	_ = creatorCode
	// Hand-rolled precision is brittle; instead test CREATE via the
	// top-level API, and contract-initiated CREATE via the compiler tests.
	ret, addr, left, err := evm.Create(caller, initFull, 200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, runtime) {
		t.Errorf("deployed code = %x, want %x", ret, runtime)
	}
	if addr != types.CreateAddress(caller, 0) {
		t.Errorf("create address mismatch")
	}
	if left == 200000 {
		t.Error("create consumed no gas")
	}
	// Calling the new contract returns 42.
	out, _, err := evm.Call(caller, addr, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(out); got.Uint64() != 0x2a {
		t.Errorf("created contract returned %s", got)
	}
	// Creator nonce must have advanced.
	if st.GetNonce(caller) != 1 {
		t.Errorf("creator nonce = %d", st.GetNonce(caller))
	}
}

func TestCreateCodeDepositGasAndLimit(t *testing.T) {
	evm, _ := testEVM()
	runtime := bytes.Repeat([]byte{byte(STOP)}, 100)
	init := asm(
		byte(PUSH2), 0x00, 0x64, push1(12), push1(0), CODECOPY,
		byte(PUSH2), 0x00, 0x64, push1(0), RETURN, byte(STOP),
	)
	initFull := append(init, runtime...)
	// Plenty of gas: succeeds.
	_, _, _, err := evm.Create(caller, initFull, 200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Just under the deposit cost: init runs but deposit fails.
	_, _, left, err := evm.Create(caller, initFull, 1000+uint64(len(runtime))*GasCodeDepositByte/2, nil)
	if err == nil {
		t.Error("expected code store OOG")
	}
	_ = left
}

func TestValueTransferViaCall(t *testing.T) {
	evm, st := testEVM()
	st.SetBalance(caller, uint256.NewInt(1000))
	st.Finalise()
	target := deploy(st, 0x40, nil) // plain account
	_, _, err := evm.Call(caller, target, nil, 50000, uint256.NewInt(400))
	if err != nil {
		t.Fatal(err)
	}
	if st.GetBalance(target).Uint64() != 400 || st.GetBalance(caller).Uint64() != 600 {
		t.Errorf("balances: target %s caller %s", st.GetBalance(target), st.GetBalance(caller))
	}
	// Insufficient balance fails without transfer.
	if _, _, err := evm.Call(caller, target, nil, 50000, uint256.NewInt(10_000)); err != ErrInsufficientBalance {
		t.Errorf("err = %v", err)
	}
}

func TestSelfDestruct(t *testing.T) {
	evm, st := testEVM()
	victim := deploy(st, 0x41, asm(push1(0x42), SELFDESTRUCT))
	st.SetBalance(victim, uint256.NewInt(777))
	st.Finalise()
	_, _, err := evm.Call(caller, victim, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	heir := types.BytesToAddress([]byte{0x42})
	if st.GetBalance(heir).Uint64() != 777 {
		t.Errorf("heir balance = %s", st.GetBalance(heir))
	}
	if st.GetRefund() != GasSelfdestructRefund {
		t.Errorf("refund = %d", st.GetRefund())
	}
}

func TestEcrecoverPrecompile(t *testing.T) {
	evm, st := testEVM()
	st.SetBalance(caller, uint256.NewInt(1))
	key, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x1234))
	msgHash := keccak.Sum256([]byte("precompile test"))
	sig, err := secp256k1.Sign(key, msgHash[:])
	if err != nil {
		t.Fatal(err)
	}
	v, r, s := sig.VRS27()
	input := make([]byte, 128)
	copy(input[0:32], msgHash[:])
	input[63] = v
	copy(input[64:96], r[:])
	copy(input[96:128], s[:])

	one := types.BytesToAddress([]byte{1})
	ret, left, err := evm.Call(caller, one, input, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAddr := key.EthereumAddress()
	if !bytes.Equal(ret[12:], wantAddr[:]) {
		t.Errorf("ecrecover = %x, want %x", ret[12:], wantAddr)
	}
	if 10000-left != GasEcrecover {
		t.Errorf("ecrecover gas = %d", 10000-left)
	}
	// Garbage signature: empty return, gas still consumed.
	input[64] ^= 0xFF
	ret, left, err = evm.Call(caller, one, input, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 0 {
		// recovery may still produce some address; it must differ
		if bytes.Equal(ret[12:], wantAddr[:]) {
			t.Error("tampered signature recovered same address")
		}
	}
	_ = left
}

func TestSha256AndIdentityPrecompiles(t *testing.T) {
	evm, st := testEVM()
	st.SetBalance(caller, uint256.NewInt(1))
	data := []byte("hello precompiles")

	two := types.BytesToAddress([]byte{2})
	ret, _, err := evm.Call(caller, two, data, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data)
	if !bytes.Equal(ret, want[:]) {
		t.Errorf("sha256 = %x", ret)
	}

	four := types.BytesToAddress([]byte{4})
	ret, _, err = evm.Call(caller, four, data, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, data) {
		t.Errorf("identity = %x", ret)
	}
}

func TestMemoryExpansionGasQuadratic(t *testing.T) {
	evm, st := testEVM()
	// MSTORE at offset 0 vs offset 64k: the latter must cost much more.
	smallCode := asm(push1(1), push1(0), MSTORE, STOP)
	bigCode := asm(push1(1), byte(PUSH3), 0x01, 0x00, 0x00, MSTORE, STOP)
	a := deploy(st, 0x50, smallCode)
	b := deploy(st, 0x51, bigCode)
	_, leftA, err := evm.Call(caller, a, nil, 1_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, leftB, err := evm.Call(caller, b, nil, 1_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	usedA, usedB := 1_000_000-leftA, 1_000_000-leftB
	if usedB < usedA+3*65536/32 {
		t.Errorf("memory expansion too cheap: small %d big %d", usedA, usedB)
	}
}

func TestLogsEmitted(t *testing.T) {
	evm, st := testEVM()
	// LOG1 with topic 0x77 and 1 byte of data.
	code := asm(
		push1(0xEE), push1(0), MSTORE8,
		push1(0x77), // topic
		push1(1), push1(0), LOG1,
		STOP,
	)
	target := deploy(st, 0x52, code)
	_, _, err := evm.Call(caller, target, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	logs := st.Logs()
	if len(logs) != 1 {
		t.Fatalf("logs = %d", len(logs))
	}
	if logs[0].Address != target || len(logs[0].Topics) != 1 ||
		logs[0].Topics[0] != types.BytesToHash([]byte{0x77}) ||
		!bytes.Equal(logs[0].Data, []byte{0xEE}) {
		t.Errorf("log = %+v", logs[0])
	}
}

func TestCallDepthLimit(t *testing.T) {
	evm, st := testEVM()
	// Self-calling contract burns depth; must stop at the limit without
	// crashing (the 63/64 rule also throttles it).
	code := asm(
		push1(0), push1(0), push1(0), push1(0), push1(0),
		push1(0x53),
		GAS,
		CALL,
		STOP,
	)
	target := deploy(st, 0x53, code)
	_, _, err := evm.Call(caller, target, nil, 10_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockContextOpcodes(t *testing.T) {
	evm, st := testEVM()
	code := asm(TIMESTAMP, push1(0), MSTORE, NUMBER, push1(32), MSTORE, push1(64), push1(0), RETURN)
	target := deploy(st, 0x54, code)
	ret, _, err := evm.Call(caller, target, nil, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := new(uint256.Int).SetBytes(ret[:32])
	num := new(uint256.Int).SetBytes(ret[32:])
	if ts.Uint64() != 1_000_000 || num.Uint64() != 100 {
		t.Errorf("timestamp %s number %s", ts, num)
	}
}

func TestIntrinsicGas(t *testing.T) {
	if IntrinsicGas(nil, false) != 21000 {
		t.Error("base tx gas")
	}
	if IntrinsicGas(nil, true) != 53000 {
		t.Error("create tx gas")
	}
	if IntrinsicGas([]byte{0, 1, 0, 2}, false) != 21000+2*4+2*68 {
		t.Error("calldata gas")
	}
}

func BenchmarkEVMArithmeticLoop(b *testing.B) {
	evm, st := testEVM()
	code := asm(
		push1(0),
		byte(PUSH2), 0x03, 0xE8, // 1000 iterations
		JUMPDEST,
		DUP1, ISZERO, push1(22), JUMPI,
		DUP1, SWAP2, ADD, SWAP1,
		push1(1), SWAP1, SUB,
		push1(5), JUMP,
		JUMPDEST,
		STOP,
	)
	target := deploy(st, 0x60, code)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := evm.Call(caller, target, nil, 10_000_000, nil); err != nil {
			b.Fatal(err)
		}
	}
}
