package vm

import (
	"testing"

	"onoffchain/internal/uint256"
)

// Exact gas assertions pin the yellow-paper schedule the reproduction's
// Table II comparability depends on. Each case runs a hand-assembled
// fragment and asserts the precise gas consumed by the frame (no
// transaction intrinsic cost at this layer).
func TestExactOpcodeGas(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		want uint64
	}{
		{
			// PUSH1 + PUSH1 + ADD + STOP = 3 + 3 + 3 + 0.
			"add", asm(push1(1), push1(2), ADD, STOP), 9,
		},
		{
			// MSTORE to word 0: 3 + 3 + 3 + memory expansion 1 word (3).
			"mstore", asm(push1(1), push1(0), MSTORE, STOP), 12,
		},
		{
			// SHA3 of 32 bytes at 0: 3 + 3 + (30 + 6*1) + mem 3 = 45.
			"sha3", asm(push1(32), push1(0), SHA3, STOP), 45,
		},
		{
			// EXP with 1-byte exponent: 3 + 3 + (10 + 50) = 66.
			"exp", asm(push1(0x10), push1(2), SWAP1, EXP, STOP), 66 + 3, // +3 for SWAP1
		},
		{
			// SLOAD cold (pre-Berlin flat 200): 3 + 200.
			"sload", asm(push1(1), SLOAD, STOP), 203,
		},
		{
			// SSTORE zero->nonzero: 3 + 3 + 20000.
			"sstore-set", asm(push1(7), push1(1), SSTORE, STOP), 20006,
		},
		{
			// SSTORE zero->zero: 3 + 3 + 5000 (reset rate).
			"sstore-noop", asm(push1(0), push1(1), SSTORE, STOP), 5006,
		},
		{
			// JUMPDEST costs 1; JUMP costs 8: 3 + 8 + 1 + 0.
			"jump", asm(push1(3), JUMP, JUMPDEST, STOP), 12,
		},
		{
			// BALANCE (Constantinople 400): 3 + 400.
			"balance", asm(push1(0x99), BALANCE, STOP), 403,
		},
		{
			// LOG1, 1 byte of data from memory word 0:
			// MSTORE8 (3+3+3+mem 3) + topic push 3 + size/offset pushes 6 +
			// LOG1 (375+375) + data byte 8.
			"log1", asm(push1(0xEE), push1(0), MSTORE8, push1(0x77), push1(1), push1(0), LOG1, STOP),
			3 + 3 + 3 + 3 + 3 + 3 + 3 + 375 + 375 + 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evm, st := testEVM()
			target := deploy(st, 0x90, tc.code)
			const budget = 1_000_000
			_, left, err := evm.Call(caller, target, nil, budget, nil)
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			if used := budget - left; used != tc.want {
				t.Errorf("gas used = %d, want %d", used, tc.want)
			}
		})
	}
}

// The quadratic memory term: expanding to w words costs 3w + w^2/512.
func TestExactMemoryExpansionGas(t *testing.T) {
	evm, st := testEVM()
	// MSTORE at offset 32*1024-32 expands to 1024 words:
	// cost = 3*1024 + 1024^2/512 = 3072 + 2048 = 5120.
	code := asm(push1(1), byte(PUSH2), 0x7f, 0xe0, MSTORE, STOP)
	target := deploy(st, 0x91, code)
	const budget = 1_000_000
	_, left, err := evm.Call(caller, target, nil, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(3 + 3 + 3 + 5120)
	if used := budget - left; used != want {
		t.Errorf("gas used = %d, want %d", used, want)
	}
}

// CALL with value: 700 base + 9000 value surcharge + 25000 new account,
// minus the 2300 stipend given to (and unused by) the empty callee.
func TestExactCallValueGas(t *testing.T) {
	evm, st := testEVM()
	st.SetBalance(caller, uint256.NewInt(1_000_000))
	st.Finalise()
	code := asm(
		push1(0), push1(0), push1(0), push1(0), // ret/args
		push1(5),    // value
		push1(0x99), // fresh account
		push1(0),    // gas request
		CALL, POP, STOP,
	)
	target := deploy(st, 0x92, code)
	// Fund the calling contract so the transfer succeeds.
	st.SetBalance(target, uint256.NewInt(100))
	st.Finalise()
	const budget = 1_000_000
	_, left, err := evm.Call(caller, target, nil, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 7 pushes (21) + POP (2) + CALL 700 + value 9000 + new account 25000,
	// minus the 2300 stipend the empty callee hands back unconsumed
	// (mainnet semantics: the stipend is granted on top of the forwarded
	// gas and refunds like any leftover).
	want := uint64(21 + 2 + 700 + 9000 + 25000 - 2300)
	if used := budget - left; used != want {
		t.Errorf("gas used = %d, want %d", used, want)
	}
}
