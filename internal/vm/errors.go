package vm

import "errors"

// Execution errors. ErrExecutionReverted is special: it preserves return
// data and refunds unconsumed gas; all others consume the frame's gas.
var (
	ErrOutOfGas                 = errors.New("vm: out of gas")
	ErrStackUnderflow           = errors.New("vm: stack underflow")
	ErrStackOverflow            = errors.New("vm: stack overflow")
	ErrInvalidJump              = errors.New("vm: invalid jump destination")
	ErrInvalidOpcode            = errors.New("vm: invalid opcode")
	ErrExecutionReverted        = errors.New("vm: execution reverted")
	ErrWriteProtection          = errors.New("vm: write protection (static call)")
	ErrDepth                    = errors.New("vm: max call depth exceeded")
	ErrInsufficientBalance      = errors.New("vm: insufficient balance for transfer")
	ErrCodeStoreOutOfGas        = errors.New("vm: contract creation code storage out of gas")
	ErrMaxCodeSizeExceeded      = errors.New("vm: max code size exceeded")
	ErrContractAddressCollision = errors.New("vm: contract address collision")
	ErrReturnDataOutOfBounds    = errors.New("vm: return data out of bounds")
	ErrGasUintOverflow          = errors.New("vm: gas uint64 overflow")
	ErrNonceOverflow            = errors.New("vm: nonce overflow")
)
