package vm

import (
	"testing"

	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// DELEGATECALL executes the target's code in the caller's storage context
// and preserves msg.sender.
func TestDelegateCallStorageContext(t *testing.T) {
	evm, st := testEVM()
	// Library: SSTORE slot1 = CALLER (to observe sender preservation).
	lib := deploy(st, 0x70, asm(CALLER, push1(1), SSTORE, STOP))
	// Proxy: DELEGATECALL the library.
	proxy := deploy(st, 0x71, asm(
		push1(0), push1(0), push1(0), push1(0),
		push1(0x70),
		byte(PUSH2), 0xff, 0xff,
		DELEGATECALL,
		POP, STOP,
	))
	_, _, err := evm.Call(caller, proxy, nil, 200_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The write landed in the PROXY's storage, not the library's.
	got := st.GetState(proxy, types.BytesToHash([]byte{1}))
	want := caller.Hash()
	if got != want {
		t.Errorf("proxy slot = %s, want caller %s", got.Hex(), want.Hex())
	}
	if !st.GetState(lib, types.BytesToHash([]byte{1})).IsZero() {
		t.Error("library storage written")
	}
}

// CALLCODE also uses the caller's storage but msg.sender becomes the
// calling contract.
func TestCallCodeStorageContext(t *testing.T) {
	evm, st := testEVM()
	deploy(st, 0x72, asm(CALLER, push1(2), SSTORE, STOP))
	proxy := deploy(st, 0x73, asm(
		push1(0), push1(0), push1(0), push1(0), push1(0),
		push1(0x72),
		byte(PUSH2), 0xff, 0xff,
		CALLCODE,
		POP, STOP,
	))
	_, _, err := evm.Call(caller, proxy, nil, 200_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := st.GetState(proxy, types.BytesToHash([]byte{2}))
	if got != proxy.Hash() {
		t.Errorf("callcode sender = %s, want proxy %s", got.Hex(), proxy.Hash().Hex())
	}
}

func TestCreate2DeterministicAddress(t *testing.T) {
	evm, _ := testEVM()
	initCode := asm(push1(0), push1(0), RETURN) // deploys empty code
	salt := types.BytesToHash([]byte{0x42})
	_, addr1, _, err := evm.Create2(caller, initCode, 200_000, nil, salt)
	if err != nil {
		t.Fatal(err)
	}
	// Same salt + code from a different nonce must give the same address
	// formula — so a second create at the same address collides.
	_, _, _, err = evm.Create2(caller, initCode, 200_000, nil, salt)
	if err != ErrContractAddressCollision {
		t.Errorf("second create2 err = %v, want collision", err)
	}
	// Different salt gives a different address.
	_, addr2, _, err := evm.Create2(caller, initCode, 200_000, nil, types.BytesToHash([]byte{0x43}))
	if err != nil {
		t.Fatal(err)
	}
	if addr1 == addr2 {
		t.Error("different salts produced the same address")
	}
}

func TestExtCodeOpcodes(t *testing.T) {
	evm, st := testEVM()
	target := deploy(st, 0x74, asm(STOP, STOP, STOP))
	// EXTCODESIZE of target, then EXTCODEHASH; return both.
	code := asm(
		push1(0x74), EXTCODESIZE, push1(0), MSTORE,
		push1(0x74), EXTCODEHASH, push1(32), MSTORE,
		push1(64), push1(0), RETURN,
	)
	probe := deploy(st, 0x75, code)
	ret, _, err := evm.Call(caller, probe, nil, 200_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := new(uint256.Int).SetBytes(ret[:32])
	if size.Uint64() != 3 {
		t.Errorf("extcodesize = %s", size)
	}
	hash := types.BytesToHash(ret[32:])
	if hash != st.GetCodeHash(target) {
		t.Errorf("extcodehash = %s", hash.Hex())
	}
	// EXTCODEHASH of a nonexistent account is zero.
	code2 := asm(push1(0x99), EXTCODEHASH, push1(0), MSTORE, push1(32), push1(0), RETURN)
	probe2 := deploy(st, 0x76, code2)
	ret2, _, err := evm.Call(caller, probe2, nil, 200_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !new(uint256.Int).SetBytes(ret2).IsZero() {
		t.Error("extcodehash of empty account nonzero")
	}
}

func TestReturnDataCopyOutOfBounds(t *testing.T) {
	evm, st := testEVM()
	// RETURNDATACOPY with no prior call: any nonzero size is out of bounds.
	code := asm(push1(1), push1(0), push1(0), RETURNDATACOPY, STOP)
	target := deploy(st, 0x77, code)
	if _, _, err := evm.Call(caller, target, nil, 100_000, nil); err != ErrReturnDataOutOfBounds {
		t.Errorf("err = %v", err)
	}
}

func TestCallToPrecompileViaOpcode(t *testing.T) {
	evm, st := testEVM()
	// Call identity precompile (0x04) copying 3 bytes through it.
	code := asm(
		push1(0xAA), push1(0), MSTORE8,
		push1(0xBB), push1(1), MSTORE8,
		push1(0xCC), push1(2), MSTORE8,
		push1(3), push1(0x20), // retSize, retOffset
		push1(3), push1(0), // argsSize, argsOffset
		push1(0),    // value
		push1(0x04), // identity
		byte(PUSH2), 0xff, 0xff,
		CALL,
		POP,
		push1(3), push1(0x20), RETURN,
	)
	target := deploy(st, 0x78, code)
	ret, _, err := evm.Call(caller, target, nil, 200_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ret) != 3 || ret[0] != 0xAA || ret[1] != 0xBB || ret[2] != 0xCC {
		t.Errorf("identity copy = %x", ret)
	}
}

func TestSixtyFourthRuleCapsForwarding(t *testing.T) {
	evm, st := testEVM()
	// Callee burns everything it gets (infinite loop); caller requests a
	// huge forward but must retain >= 1/64 of its gas and succeed.
	deploy(st, 0x79, asm(JUMPDEST, push1(0), JUMP))
	callerCode := asm(
		push1(0), push1(0), push1(0), push1(0), push1(0),
		push1(0x79),
		byte(PUSH32),
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		CALL,
		push1(0), MSTORE, push1(32), push1(0), RETURN,
	)
	target := deploy(st, 0x7a, callerCode)
	ret, left, err := evm.Call(caller, target, nil, 500_000, nil)
	if err != nil {
		t.Fatalf("outer call died: %v", err)
	}
	// Inner call failed (OOG) but the outer survived on its 1/64 reserve.
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Error("burning callee reported success")
	}
	if left == 0 {
		t.Error("outer frame kept no gas")
	}
}
