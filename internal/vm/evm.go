// Package vm implements an Ethereum Virtual Machine: a 256-bit stack
// machine with the Constantinople-era instruction set and the yellow-paper
// gas schedule contemporary with the paper (2019). It executes contract
// bytecode against the journaled state in internal/state, supports the full
// CALL/CREATE family with the 63/64 gas forwarding rule, static-call write
// protection, REVERT with return data, gas refunds, and the ecrecover /
// sha256 / identity precompiles.
package vm

import (
	"crypto/sha256"

	"onoffchain/internal/keccak"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/state"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// BlockContext supplies block-level information to the EVM.
type BlockContext struct {
	Coinbase   types.Address
	Number     uint64
	Time       uint64
	GasLimit   uint64
	Difficulty *uint256.Int
	// BlockHash returns the hash of a recent block (BLOCKHASH opcode).
	BlockHash func(uint64) types.Hash
}

// TxContext supplies transaction-level information to the EVM.
type TxContext struct {
	Origin   types.Address
	GasPrice *uint256.Int
}

// EVM executes bytecode against a StateDB within a block/tx context.
type EVM struct {
	Block BlockContext
	Tx    TxContext
	State *state.StateDB

	depth      int
	static     bool   // inside a STATICCALL context (propagates to children)
	returnData []byte // return buffer of the last nested call
}

// NewEVM creates an EVM for a single transaction execution.
func NewEVM(block BlockContext, tx TxContext, st *state.StateDB) *EVM {
	if block.Difficulty == nil {
		block.Difficulty = new(uint256.Int)
	}
	if block.BlockHash == nil {
		block.BlockHash = func(n uint64) types.Hash {
			return types.Hash(keccak.Sum256(uint256.NewInt(n).Bytes()))
		}
	}
	if tx.GasPrice == nil {
		tx.GasPrice = new(uint256.Int)
	}
	return &EVM{Block: block, Tx: tx, State: st}
}

// Contract is one execution frame.
type Contract struct {
	CallerAddress types.Address // msg.sender in this frame
	Address       types.Address // storage/self context
	Value         *uint256.Int  // msg.value
	Code          []byte
	Input         []byte
	Gas           uint64

	jumpdests map[uint64]bool
}

func newContract(caller, addr types.Address, value *uint256.Int, code, input []byte, gas uint64) *Contract {
	return &Contract{
		CallerAddress: caller,
		Address:       addr,
		Value:         value,
		Code:          code,
		Input:         input,
		Gas:           gas,
	}
}

// useGas deducts gas, reporting false when insufficient.
func (c *Contract) useGas(gas uint64) bool {
	if c.Gas < gas {
		return false
	}
	c.Gas -= gas
	return true
}

// validJumpdest reports whether dest is a JUMPDEST on an instruction
// boundary (not inside PUSH data).
func (c *Contract) validJumpdest(dest *uint256.Int) bool {
	if !dest.IsUint64() {
		return false
	}
	pos := dest.Uint64()
	if pos >= uint64(len(c.Code)) || OpCode(c.Code[pos]) != JUMPDEST {
		return false
	}
	if c.jumpdests == nil {
		c.jumpdests = analyzeJumpdests(c.Code)
	}
	return c.jumpdests[pos]
}

// analyzeJumpdests marks the code offsets holding reachable JUMPDEST
// opcodes, skipping PUSH immediate data.
func analyzeJumpdests(code []byte) map[uint64]bool {
	dests := make(map[uint64]bool)
	for pc := uint64(0); pc < uint64(len(code)); pc++ {
		op := OpCode(code[pc])
		if op == JUMPDEST {
			dests[pc] = true
		} else if op.IsPush() {
			pc += uint64(op - PUSH1 + 1)
		}
	}
	return dests
}

// canTransfer checks the sender balance covers the transfer.
func (evm *EVM) canTransfer(from types.Address, amount *uint256.Int) bool {
	return !evm.State.GetBalance(from).Lt(amount)
}

// transfer moves value between accounts.
func (evm *EVM) transfer(from, to types.Address, amount *uint256.Int) {
	evm.State.SubBalance(from, amount)
	evm.State.AddBalance(to, amount)
}

// Call executes the code at addr with the given input. It transfers value,
// handles precompiles, and reverts state on failure. Returns the output,
// the leftover gas, and an error (ErrExecutionReverted preserves output).
func (evm *EVM) Call(caller, addr types.Address, input []byte, gas uint64, value *uint256.Int) ([]byte, uint64, error) {
	if value == nil {
		value = new(uint256.Int)
	}
	if evm.depth > CallCreateDepth {
		return nil, gas, ErrDepth
	}
	if !value.IsZero() && !evm.canTransfer(caller, value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := evm.State.Snapshot()
	evm.transfer(caller, addr, value)

	if p, ok := precompile(addr); ok {
		ret, leftGas, err := runPrecompile(p, input, gas)
		if err != nil {
			evm.State.RevertToSnapshot(snapshot)
		}
		return ret, leftGas, err
	}

	code := evm.State.GetCode(addr)
	if len(code) == 0 {
		return nil, gas, nil // plain transfer
	}
	frame := newContract(caller, addr, value, code, input, gas)
	ret, err := evm.run(frame)
	if err != nil {
		evm.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			frame.Gas = 0
		}
	}
	return ret, frame.Gas, err
}

// CallCode executes addr's code in the caller's storage context (legacy).
func (evm *EVM) CallCode(caller, addr types.Address, input []byte, gas uint64, value *uint256.Int) ([]byte, uint64, error) {
	if value == nil {
		value = new(uint256.Int)
	}
	if evm.depth > CallCreateDepth {
		return nil, gas, ErrDepth
	}
	if !value.IsZero() && !evm.canTransfer(caller, value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := evm.State.Snapshot()
	code := evm.State.GetCode(addr)
	frame := newContract(caller, caller, value, code, input, gas)
	ret, err := evm.run(frame)
	if err != nil {
		evm.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			frame.Gas = 0
		}
	}
	return ret, frame.Gas, err
}

// DelegateCall executes addr's code in the caller frame's context,
// preserving msg.sender and msg.value of the parent.
func (evm *EVM) DelegateCall(parent *Contract, addr types.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	if evm.depth > CallCreateDepth {
		return nil, gas, ErrDepth
	}
	snapshot := evm.State.Snapshot()
	code := evm.State.GetCode(addr)
	frame := newContract(parent.CallerAddress, parent.Address, parent.Value, code, input, gas)
	ret, err := evm.run(frame)
	if err != nil {
		evm.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			frame.Gas = 0
		}
	}
	return ret, frame.Gas, err
}

// StaticCall executes addr's code with write protection.
func (evm *EVM) StaticCall(caller, addr types.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	if evm.depth > CallCreateDepth {
		return nil, gas, ErrDepth
	}
	snapshot := evm.State.Snapshot()
	if p, ok := precompile(addr); ok {
		ret, leftGas, err := runPrecompile(p, input, gas)
		if err != nil {
			evm.State.RevertToSnapshot(snapshot)
		}
		return ret, leftGas, err
	}
	code := evm.State.GetCode(addr)
	frame := newContract(caller, addr, new(uint256.Int), code, input, gas)
	prevStatic := evm.static
	evm.static = true
	ret, err := evm.run(frame)
	evm.static = prevStatic
	if err != nil {
		evm.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			frame.Gas = 0
		}
	}
	return ret, frame.Gas, err
}

// Create deploys a contract from initCode, deriving the address from the
// creator's nonce: keccak256(rlp([caller, nonce]))[12:].
func (evm *EVM) Create(caller types.Address, initCode []byte, gas uint64, value *uint256.Int) ([]byte, types.Address, uint64, error) {
	nonce := evm.State.GetNonce(caller)
	addr := types.CreateAddress(caller, nonce)
	return evm.create(caller, initCode, gas, value, addr)
}

// Create2 deploys a contract at keccak256(0xff ++ caller ++ salt ++
// keccak256(initCode))[12:].
func (evm *EVM) Create2(caller types.Address, initCode []byte, gas uint64, value *uint256.Int, salt types.Hash) ([]byte, types.Address, uint64, error) {
	codeHash := keccak.Sum256(initCode)
	h := keccak.Sum256([]byte{0xff}, caller.Bytes(), salt.Bytes(), codeHash[:])
	addr := types.BytesToAddress(h[12:])
	return evm.create(caller, initCode, gas, value, addr)
}

func (evm *EVM) create(caller types.Address, initCode []byte, gas uint64, value *uint256.Int, addr types.Address) ([]byte, types.Address, uint64, error) {
	if value == nil {
		value = new(uint256.Int)
	}
	if evm.depth > CallCreateDepth {
		return nil, types.Address{}, gas, ErrDepth
	}
	if !value.IsZero() && !evm.canTransfer(caller, value) {
		return nil, types.Address{}, gas, ErrInsufficientBalance
	}
	nonce := evm.State.GetNonce(caller)
	if nonce+1 < nonce {
		return nil, types.Address{}, gas, ErrNonceOverflow
	}
	evm.State.SetNonce(caller, nonce+1)

	// Address collision check (existing code or nonce).
	if evm.State.GetNonce(addr) != 0 ||
		(evm.State.GetCodeHash(addr) != (types.Hash{}) && evm.State.GetCodeHash(addr) != types.EmptyCodeHash) {
		return nil, types.Address{}, 0, ErrContractAddressCollision
	}

	snapshot := evm.State.Snapshot()
	evm.State.CreateAccount(addr)
	evm.State.SetNonce(addr, 1) // EIP-161
	evm.transfer(caller, addr, value)

	frame := newContract(caller, addr, value, initCode, nil, gas)
	ret, err := evm.run(frame)
	if err != nil {
		evm.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			frame.Gas = 0
		}
		return ret, addr, frame.Gas, err
	}
	// Deposit the returned runtime code.
	if len(ret) > MaxCodeSize {
		evm.State.RevertToSnapshot(snapshot)
		return nil, addr, 0, ErrMaxCodeSizeExceeded
	}
	depositGas := uint64(len(ret)) * GasCodeDepositByte
	if !frame.useGas(depositGas) {
		evm.State.RevertToSnapshot(snapshot)
		return nil, addr, 0, ErrCodeStoreOutOfGas
	}
	evm.State.SetCode(addr, ret)
	return ret, addr, frame.Gas, nil
}

// precompiledContract is a native contract at a reserved address.
type precompiledContract interface {
	requiredGas(input []byte) uint64
	run(input []byte) ([]byte, error)
}

type ecrecoverPrecompile struct{}

func (ecrecoverPrecompile) requiredGas([]byte) uint64 { return GasEcrecover }

func (ecrecoverPrecompile) run(input []byte) ([]byte, error) {
	// Pad input to 128 bytes: hash(32) v(32) r(32) s(32).
	in := make([]byte, 128)
	copy(in, input)
	hash := in[0:32]
	vWord := new(uint256.Int).SetBytes(in[32:64])
	r, rOK := secp256k1.ScalarFromBytes(in[64:96])
	s, sOK := secp256k1.ScalarFromBytes(in[96:128])
	if !rOK || !sOK {
		return nil, nil // r/s word out of range: empty return, gas consumed
	}
	if !vWord.IsUint64() {
		return nil, nil
	}
	v := vWord.Uint64()
	if v != 27 && v != 28 {
		return nil, nil
	}
	addr, err := secp256k1.RecoverAddress(hash, r, s, byte(v-27))
	if err != nil {
		return nil, nil
	}
	out := make([]byte, 32)
	copy(out[12:], addr[:])
	return out, nil
}

type sha256Precompile struct{}

func (sha256Precompile) requiredGas(input []byte) uint64 {
	return GasSha256Base + toWordSize(uint64(len(input)))*GasSha256Word
}

func (sha256Precompile) run(input []byte) ([]byte, error) {
	h := sha256.Sum256(input)
	return h[:], nil
}

type identityPrecompile struct{}

func (identityPrecompile) requiredGas(input []byte) uint64 {
	return GasIdentityBase + toWordSize(uint64(len(input)))*GasIdentityWord
}

func (identityPrecompile) run(input []byte) ([]byte, error) {
	return append([]byte{}, input...), nil
}

// precompile returns the native contract registered at addr, if any.
func precompile(addr types.Address) (precompiledContract, bool) {
	switch addr {
	case types.BytesToAddress([]byte{1}):
		return ecrecoverPrecompile{}, true
	case types.BytesToAddress([]byte{2}):
		return sha256Precompile{}, true
	case types.BytesToAddress([]byte{4}):
		return identityPrecompile{}, true
	default:
		return nil, false
	}
}

func runPrecompile(p precompiledContract, input []byte, gas uint64) ([]byte, uint64, error) {
	cost := p.requiredGas(input)
	if gas < cost {
		return nil, 0, ErrOutOfGas
	}
	ret, err := p.run(input)
	if err != nil {
		return nil, 0, err
	}
	return ret, gas - cost, nil
}
