package trie

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"onoffchain/internal/types"
)

func TestEmptyRootVector(t *testing.T) {
	// The famous constant every Ethereum client pins.
	want := "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
	if got := hex.EncodeToString(EmptyRoot.Bytes()); got != want {
		t.Fatalf("EmptyRoot = %s, want %s", got, want)
	}
	tr := New(nil)
	if tr.Hash() != EmptyRoot {
		t.Fatal("empty trie hash != EmptyRoot")
	}
}

// Canonical vector from the Ethereum trie test fixtures.
func TestKnownRootVector(t *testing.T) {
	tr := New(nil)
	entries := map[string]string{
		"do":    "verb",
		"dog":   "puppy",
		"doge":  "coin",
		"horse": "stallion",
	}
	for k, v := range entries {
		tr.Update([]byte(k), []byte(v))
	}
	want := "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
	if got := hex.EncodeToString(tr.Hash().Bytes()); got != want {
		t.Fatalf("root = %s, want %s", got, want)
	}
}

func TestGetUpdateDelete(t *testing.T) {
	tr := New(nil)
	tr.Update([]byte("key1"), []byte("value1"))
	tr.Update([]byte("key2"), []byte("value2"))
	if got := tr.Get([]byte("key1")); string(got) != "value1" {
		t.Errorf("Get(key1) = %q", got)
	}
	tr.Update([]byte("key1"), []byte("replaced"))
	if got := tr.Get([]byte("key1")); string(got) != "replaced" {
		t.Errorf("after update: %q", got)
	}
	tr.Delete([]byte("key1"))
	if got := tr.Get([]byte("key1")); got != nil {
		t.Errorf("after delete: %q", got)
	}
	if got := tr.Get([]byte("key2")); string(got) != "value2" {
		t.Errorf("sibling affected: %q", got)
	}
	if got := tr.Get([]byte("missing")); got != nil {
		t.Errorf("missing key returned %q", got)
	}
}

func TestEmptyValueDeletes(t *testing.T) {
	tr := New(nil)
	tr.Update([]byte("a"), []byte("1"))
	tr.Update([]byte("a"), nil)
	if tr.Hash() != EmptyRoot {
		t.Error("empty-value update did not delete")
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys that are prefixes of each other exercise the branch value slot.
	tr := New(nil)
	tr.Update([]byte("ab"), []byte("short"))
	tr.Update([]byte("abcd"), []byte("long"))
	tr.Update([]byte("abce"), []byte("long2"))
	if string(tr.Get([]byte("ab"))) != "short" ||
		string(tr.Get([]byte("abcd"))) != "long" ||
		string(tr.Get([]byte("abce"))) != "long2" {
		t.Fatal("prefix keys misread")
	}
	tr.Delete([]byte("ab"))
	if tr.Get([]byte("ab")) != nil || string(tr.Get([]byte("abcd"))) != "long" {
		t.Fatal("delete of prefix key broke others")
	}
	tr.Delete([]byte("abcd"))
	if string(tr.Get([]byte("abce"))) != "long2" {
		t.Fatal("collapse after delete lost sibling")
	}
}

// Model-based property test: the trie must agree with a plain map under a
// random workload, and deleting everything must return to the empty root.
func TestAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		tr := New(nil)
		model := map[string]string{}
		var keys []string
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				k := fmt.Sprintf("k%d", rng.Intn(60))
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				tr.Update([]byte(k), []byte(v))
				if _, seen := model[k]; !seen {
					keys = append(keys, k)
				}
				model[k] = v
			case 2: // delete
				if len(keys) == 0 {
					continue
				}
				k := keys[rng.Intn(len(keys))]
				tr.Delete([]byte(k))
				delete(model, k)
			case 3: // read check
				k := fmt.Sprintf("k%d", rng.Intn(60))
				got := tr.Get([]byte(k))
				want, ok := model[k]
				if ok && string(got) != want {
					t.Fatalf("round %d: Get(%s) = %q, want %q", round, k, got, want)
				}
				if !ok && got != nil {
					t.Fatalf("round %d: Get(%s) = %q, want nil", round, k, got)
				}
			}
		}
		// Full verification sweep.
		for k, v := range model {
			if got := tr.Get([]byte(k)); string(got) != v {
				t.Fatalf("round %d: final Get(%s) = %q, want %q", round, k, got, v)
			}
		}
		// Delete everything: must return to the canonical empty root.
		for k := range model {
			tr.Delete([]byte(k))
		}
		if tr.Hash() != EmptyRoot {
			t.Fatalf("round %d: root after clearing != EmptyRoot", round)
		}
	}
}

// Root hash must be insertion-order independent (a core MPT property the
// state commitment relies on).
func TestRootOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		entries := [][2]string{
			{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"},
			{"alphabet", "4"}, {"al", "5"}, {"", "6"},
			{"gamma-ray", "7"}, {"b", "8"},
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
		tr1 := New(nil)
		for _, e := range entries {
			tr1.Update([]byte(e[0]), []byte(e[1]))
		}
		tr2 := New(nil)
		for i := len(entries) - 1; i >= 0; i-- {
			tr2.Update([]byte(entries[i][0]), []byte(entries[i][1]))
		}
		return tr1.Hash() == tr2.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Inserting then deleting a disjoint set must restore the previous root
// exactly (no residue in the commitment).
func TestDeleteRestoresRoot(t *testing.T) {
	tr := New(nil)
	tr.Update([]byte("permanent1"), []byte("a"))
	tr.Update([]byte("permanent2"), []byte("b"))
	before := tr.Hash()
	for i := 0; i < 40; i++ {
		tr.Update([]byte(fmt.Sprintf("temp%d", i)), []byte("x"))
	}
	for i := 0; i < 40; i++ {
		tr.Delete([]byte(fmt.Sprintf("temp%d", i)))
	}
	if tr.Hash() != before {
		t.Error("root not restored after add+delete cycle")
	}
}

func TestLargeValues(t *testing.T) {
	// Values above 32 bytes force hashed child references.
	tr := New(nil)
	big1 := bytes.Repeat([]byte{0xAB}, 100)
	big2 := bytes.Repeat([]byte{0xCD}, 500)
	tr.Update([]byte("k1"), big1)
	tr.Update([]byte("k2"), big2)
	if !bytes.Equal(tr.Get([]byte("k1")), big1) || !bytes.Equal(tr.Get([]byte("k2")), big2) {
		t.Fatal("large value mismatch")
	}
}

func TestFromRootReload(t *testing.T) {
	db := NewDatabase()
	tr := New(db)
	for i := 0; i < 50; i++ {
		tr.Update([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("value-%d", i*i)))
	}
	root := tr.Hash()

	reloaded, err := FromRoot(db, root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got := reloaded.Get([]byte(fmt.Sprintf("key-%02d", i)))
		if string(got) != fmt.Sprintf("value-%d", i*i) {
			t.Fatalf("reloaded Get(key-%02d) = %q", i, got)
		}
	}
	// Mutating the reloaded trie must produce a fresh consistent root.
	reloaded.Update([]byte("key-00"), []byte("mutated"))
	if reloaded.Hash() == root {
		t.Error("mutation did not change root")
	}
	if _, err := FromRoot(db, types.BytesToHash([]byte{1, 2, 3})); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestProofRoundTrip(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Update([]byte(fmt.Sprintf("account%03d", i)), bytes.Repeat([]byte{byte(i)}, 40))
	}
	root := tr.Hash()
	for _, i := range []int{0, 1, 50, 99} {
		key := []byte(fmt.Sprintf("account%03d", i))
		proof := tr.Prove(key)
		if len(proof) == 0 {
			t.Fatalf("empty proof for %s", key)
		}
		val, err := VerifyProof(root, key, proof)
		if err != nil {
			t.Fatalf("VerifyProof(%s): %v", key, err)
		}
		if !bytes.Equal(val, bytes.Repeat([]byte{byte(i)}, 40)) {
			t.Fatalf("proof value mismatch for %s", key)
		}
	}
}

func TestProofAbsence(t *testing.T) {
	tr := New(nil)
	tr.Update([]byte("exists"), []byte("yes"))
	tr.Update([]byte("exile"), []byte("no"))
	root := tr.Hash()
	proof := tr.Prove([]byte("exit"))
	val, err := VerifyProof(root, []byte("exit"), proof)
	if err != nil {
		t.Fatalf("absence proof error: %v", err)
	}
	if val != nil {
		t.Fatalf("absent key proved value %q", val)
	}
}

func TestProofTamperDetected(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 50; i++ {
		tr.Update([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte(i + 1)}, 40))
	}
	root := tr.Hash()
	proof := tr.Prove([]byte("k25"))
	if len(proof) == 0 {
		t.Fatal("no proof")
	}
	proof[0][5] ^= 0xFF
	if _, err := VerifyProof(root, []byte("k25"), proof); err == nil {
		t.Error("tampered proof verified")
	}
}

func TestHexCompactRoundTrip(t *testing.T) {
	f := func(raw []byte, term bool) bool {
		hexKey := make([]byte, 0, len(raw)+1)
		for _, b := range raw {
			hexKey = append(hexKey, b%16)
		}
		if term {
			hexKey = append(hexKey, 16)
		}
		return bytes.Equal(compactToHex(hexToCompact(hexKey)), hexKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSecureTrie(t *testing.T) {
	st := NewSecure(nil)
	st.Update([]byte("balance"), []byte{1, 2, 3})
	if got := st.Get([]byte("balance")); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("secure get = %x", got)
	}
	st.Delete([]byte("balance"))
	if st.Get([]byte("balance")) != nil {
		t.Error("secure delete failed")
	}
	if st.Hash() != EmptyRoot {
		t.Error("secure trie not empty after delete")
	}
}

func BenchmarkTrieInsert1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(nil)
		for j := 0; j < 1000; j++ {
			tr.Update([]byte(fmt.Sprintf("key%04d", j)), []byte("value"))
		}
		tr.Hash()
	}
}

func BenchmarkTrieGet(b *testing.B) {
	tr := New(nil)
	for j := 0; j < 1000; j++ {
		tr.Update([]byte(fmt.Sprintf("key%04d", j)), []byte("value"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key%04d", i%1000)))
	}
}

// Hash must be idempotent: a second Hash on an unchanged (collapsed) trie
// returns the same root, and the trie stays fully usable afterwards.
func TestHashIdempotentAfterCollapse(t *testing.T) {
	tr := New(nil)
	for j := 0; j < 50; j++ {
		tr.Update([]byte(fmt.Sprintf("key%04d", j)), []byte(fmt.Sprintf("value%d", j)))
	}
	h1 := tr.Hash()
	h2 := tr.Hash()
	if h1 != h2 {
		t.Fatalf("Hash not idempotent: %s vs %s", h1.Hex(), h2.Hex())
	}
	// Reads and writes still work through the collapsed root.
	if got := tr.Get([]byte("key0007")); string(got) != "value7" {
		t.Fatalf("get after collapse = %q", got)
	}
	tr.Update([]byte("key0007"), []byte("rewritten"))
	h3 := tr.Hash()
	if h3 == h1 {
		t.Fatal("root unchanged after update")
	}
	if tr.Hash() != h3 {
		t.Fatal("Hash not idempotent after re-update")
	}
	if got := tr.Get([]byte("key0007")); string(got) != "rewritten" {
		t.Fatalf("get after second collapse = %q", got)
	}
}

// TestParallelHashMatchesSerial: the fan-out hash must produce the exact
// root (and persist the same nodes) as the serial walk, across random
// tries of many shapes, including branch-rooted and extension-rooted ones.
func TestParallelHashMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randKV := func(keyLen int) ([]byte, []byte) {
		k := make([]byte, keyLen)
		rng.Read(k)
		v := make([]byte, 1+rng.Intn(60))
		rng.Read(v)
		return k, v
	}
	for trial := 0; trial < 20; trial++ {
		serial := New(nil)
		parallel := New(nil)
		n := 1 + rng.Intn(200)
		shared := rng.Intn(2) == 1 // half the trials root at an extension
		for i := 0; i < n; i++ {
			k, v := randKV(2 + rng.Intn(6))
			if shared {
				k = append([]byte{0xAB, 0xCD}, k...)
			}
			serial.Update(k, v)
			parallel.Update(k, v)
		}
		want := serial.hash(1)
		got := parallel.hash(8)
		if got != want {
			t.Fatalf("trial %d: parallel root %s, serial root %s", trial, got.Hex(), want.Hex())
		}
		if serial.db.Len() != parallel.db.Len() {
			t.Fatalf("trial %d: node counts differ: serial %d, parallel %d",
				trial, serial.db.Len(), parallel.db.Len())
		}
		// Incremental re-hash after more updates stays consistent too.
		for i := 0; i < 10; i++ {
			k, v := randKV(3)
			serial.Update(k, v)
			parallel.Update(k, v)
		}
		if got, want := parallel.hash(8), serial.hash(1); got != want {
			t.Fatalf("trial %d: post-update parallel root %s, serial %s", trial, got.Hex(), want.Hex())
		}
	}
}

// TestParallelHashSmallTrie: tries below the fan-out threshold take the
// serial path inside hash(workers>1) and still produce correct roots.
func TestParallelHashSmallTrie(t *testing.T) {
	tr := New(nil)
	tr.Update([]byte("do"), []byte("verb"))
	tr.Update([]byte("dog"), []byte("puppy"))
	tr.Update([]byte("doge"), []byte("coin"))
	tr.Update([]byte("horse"), []byte("stallion"))
	want := "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
	if got := hex.EncodeToString(tr.hash(8).Bytes()); got != want {
		t.Fatalf("root = %s, want %s", got, want)
	}
}

// TestConcurrentDatabaseAccess: hammers one node store from hashing,
// reading, and committing goroutines at once — meaningful under -race.
func TestConcurrentDatabaseAccess(t *testing.T) {
	db := NewDatabase()
	roots := make([]types.Hash, 8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			tr := New(db)
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("g%d-key-%d", g, i))
				tr.Update(k, []byte(fmt.Sprintf("value-%d", i*g)))
			}
			roots[g] = tr.hash(4)
			// Read back through a fresh handle while others still write.
			reload, err := FromRoot(db, roots[g])
			if err != nil {
				t.Errorf("g%d: reload: %v", g, err)
				return
			}
			if got := reload.Get([]byte(fmt.Sprintf("g%d-key-%d", g, 7))); string(got) != fmt.Sprintf("value-%d", 7*g) {
				t.Errorf("g%d: read back %q", g, got)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
