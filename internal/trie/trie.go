// Package trie implements Ethereum's Merkle Patricia Trie: a radix trie
// over hex nibbles with three node kinds (short/extension, full/branch,
// value), hex-prefix compact key encoding, RLP node encoding, and the
// standard commitment rule (nodes whose encoding is >= 32 bytes are
// referenced by their keccak256 hash; smaller nodes embed inline).
//
// It backs the state and storage commitments of the chain and provides
// Merkle proofs.
package trie

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"onoffchain/internal/keccak"
	"onoffchain/internal/rlp"
	"onoffchain/internal/types"
)

// EmptyRoot is the root hash of an empty trie: keccak256(rlp("")).
var EmptyRoot = types.Hash(keccak.Sum256([]byte{0x80}))

// node is one of: *shortNode, *fullNode, valueNode, hashNode, or nil.
type node interface{}

type (
	// shortNode covers both leaves (key has terminator, val is valueNode)
	// and extensions (no terminator, val is a child node).
	shortNode struct {
		Key []byte // hex nibbles, possibly ending in the 0x10 terminator
		Val node
	}
	// fullNode is a 17-ary branch: 16 nibble children plus a value slot.
	fullNode struct {
		Children [17]node
	}
	valueNode []byte
	hashNode  []byte
)

// Database is the node store for hashed trie nodes. It is safe for
// concurrent use: parallel subtree hashing (and parallel storage-trie
// commits that share one store) persist nodes from many goroutines.
// Stored encodings are immutable once put, so readers may retain the
// returned slices without copying.
type Database struct {
	mu    sync.RWMutex
	nodes map[types.Hash][]byte
}

// NewDatabase returns an empty in-memory node store.
func NewDatabase() *Database {
	return &Database{nodes: make(map[types.Hash][]byte)}
}

func (db *Database) put(h types.Hash, enc []byte) {
	db.mu.Lock()
	db.nodes[h] = enc
	db.mu.Unlock()
}

// Node returns the encoding of a stored node.
func (db *Database) Node(h types.Hash) ([]byte, bool) {
	db.mu.RLock()
	enc, ok := db.nodes[h]
	db.mu.RUnlock()
	return enc, ok
}

// Len returns the number of stored nodes.
func (db *Database) Len() int {
	db.mu.RLock()
	n := len(db.nodes)
	db.mu.RUnlock()
	return n
}

// Trie is a mutable Merkle Patricia Trie.
type Trie struct {
	root node
	db   *Database
}

// New creates an empty trie backed by db (a fresh store if nil).
func New(db *Database) *Trie {
	if db == nil {
		db = NewDatabase()
	}
	return &Trie{db: db}
}

// keybytesToHex expands key bytes into nibbles and appends the terminator.
func keybytesToHex(key []byte) []byte {
	out := make([]byte, len(key)*2+1)
	for i, b := range key {
		out[i*2] = b >> 4
		out[i*2+1] = b & 0x0f
	}
	out[len(out)-1] = 16
	return out
}

func hasTerminator(hexKey []byte) bool {
	return len(hexKey) > 0 && hexKey[len(hexKey)-1] == 16
}

// hexToCompact applies the hex-prefix encoding.
func hexToCompact(hexKey []byte) []byte {
	terminator := byte(0)
	if hasTerminator(hexKey) {
		terminator = 1
		hexKey = hexKey[:len(hexKey)-1]
	}
	buf := make([]byte, len(hexKey)/2+1)
	buf[0] = terminator << 5 // flag byte
	if len(hexKey)&1 == 1 {
		buf[0] |= 1 << 4 // odd flag
		buf[0] |= hexKey[0]
		hexKey = hexKey[1:]
	}
	for i := 0; i < len(hexKey); i += 2 {
		buf[i/2+1] = hexKey[i]<<4 | hexKey[i+1]
	}
	return buf
}

// compactToHex inverts hexToCompact.
func compactToHex(compact []byte) []byte {
	if len(compact) == 0 {
		return nil
	}
	base := make([]byte, 0, len(compact)*2)
	if compact[0]&0x10 != 0 { // odd
		base = append(base, compact[0]&0x0f)
	}
	for _, b := range compact[1:] {
		base = append(base, b>>4, b&0x0f)
	}
	if compact[0]&0x20 != 0 { // terminator flag
		base = append(base, 16)
	}
	return base
}

func prefixLen(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Get returns the value for key, or nil if absent.
func (t *Trie) Get(key []byte) []byte {
	v := t.get(t.root, keybytesToHex(key))
	if v == nil {
		return nil
	}
	return append([]byte{}, v...)
}

func (t *Trie) get(n node, key []byte) valueNode {
	switch n := n.(type) {
	case nil:
		return nil
	case valueNode:
		if len(key) == 0 {
			return n
		}
		return nil
	case *shortNode:
		if len(key) < len(n.Key) || !bytes.Equal(n.Key, key[:len(n.Key)]) {
			return nil
		}
		return t.get(n.Val, key[len(n.Key):])
	case *fullNode:
		if len(key) == 0 {
			if v, ok := n.Children[16].(valueNode); ok {
				return v
			}
			return nil
		}
		return t.get(n.Children[key[0]], key[1:])
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil
		}
		return t.get(resolved, key)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// Update inserts or replaces the value for key; an empty value deletes.
func (t *Trie) Update(key, value []byte) {
	if len(value) == 0 {
		t.Delete(key)
		return
	}
	t.root = t.insert(t.root, keybytesToHex(key), valueNode(append([]byte{}, value...)))
}

func (t *Trie) insert(n node, key []byte, value valueNode) node {
	if len(key) == 0 {
		return value
	}
	switch n := n.(type) {
	case nil:
		return &shortNode{Key: append([]byte{}, key...), Val: value}
	case *shortNode:
		match := prefixLen(key, n.Key)
		if match == len(n.Key) {
			return &shortNode{Key: n.Key, Val: t.insert(n.Val, key[match:], value)}
		}
		// Split: create a branch at the divergence point.
		branch := &fullNode{}
		t.attach(branch, n.Key[match:], n.Val)
		t.attach(branch, key[match:], value)
		if match == 0 {
			return branch
		}
		return &shortNode{Key: append([]byte{}, key[:match]...), Val: branch}
	case *fullNode:
		idx := key[0]
		n.Children[idx] = t.insert(n.Children[idx], key[1:], value)
		return n
	case valueNode:
		// Existing value at this exact position being extended: move it
		// into a branch's value slot.
		branch := &fullNode{}
		branch.Children[16] = n
		t.attach(branch, key, value)
		return branch
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			panic("trie: missing node during insert: " + err.Error())
		}
		return t.insert(resolved, key, value)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// attach places (key, val) under a branch node; key may be empty, a single
// terminator, or longer.
func (t *Trie) attach(branch *fullNode, key []byte, val node) {
	if len(key) == 0 || key[0] == 16 {
		branch.Children[16] = val
		return
	}
	idx := key[0]
	rest := key[1:]
	if len(rest) == 0 {
		branch.Children[idx] = val
		return
	}
	branch.Children[idx] = &shortNode{Key: append([]byte{}, rest...), Val: val}
}

// Delete removes key from the trie (no-op if absent).
func (t *Trie) Delete(key []byte) {
	t.root = t.remove(t.root, keybytesToHex(key))
}

func (t *Trie) remove(n node, key []byte) node {
	switch n := n.(type) {
	case nil:
		return nil
	case valueNode:
		if len(key) == 0 {
			return nil
		}
		return n
	case *shortNode:
		match := prefixLen(key, n.Key)
		if match < len(n.Key) {
			return n // not found
		}
		if match == len(key) {
			return nil // exact leaf removal
		}
		child := t.remove(n.Val, key[match:])
		if child == nil {
			return nil
		}
		// Merge chained short nodes.
		if sn, ok := child.(*shortNode); ok {
			merged := append(append([]byte{}, n.Key...), sn.Key...)
			return &shortNode{Key: merged, Val: sn.Val}
		}
		return &shortNode{Key: n.Key, Val: child}
	case *fullNode:
		if len(key) == 0 {
			n.Children[16] = nil
		} else {
			n.Children[key[0]] = t.remove(n.Children[key[0]], key[1:])
		}
		return t.collapse(n)
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			panic("trie: missing node during delete: " + err.Error())
		}
		return t.remove(resolved, key)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// collapse reduces a branch with fewer than two occupied slots back into a
// short node, preserving canonical structure.
func (t *Trie) collapse(n *fullNode) node {
	pos := -1
	count := 0
	for i, child := range n.Children {
		if child != nil {
			count++
			pos = i
		}
	}
	if count > 1 {
		return n
	}
	if count == 0 {
		return nil
	}
	if pos == 16 {
		return &shortNode{Key: []byte{16}, Val: n.Children[16]}
	}
	child := n.Children[pos]
	if hn, ok := child.(hashNode); ok {
		resolved, err := t.resolve(hn)
		if err != nil {
			panic("trie: missing node during collapse: " + err.Error())
		}
		child = resolved
	}
	if sn, ok := child.(*shortNode); ok {
		merged := append([]byte{byte(pos)}, sn.Key...)
		return &shortNode{Key: merged, Val: sn.Val}
	}
	return &shortNode{Key: []byte{byte(pos)}, Val: child}
}

func (t *Trie) resolve(h hashNode) (node, error) {
	enc, ok := t.db.Node(types.BytesToHash(h))
	if !ok {
		return nil, fmt.Errorf("trie: missing node %x", []byte(h))
	}
	item, err := rlp.Decode(enc)
	if err != nil {
		return nil, err
	}
	return decodeNode(item)
}

func decodeNode(item *rlp.Item) (node, error) {
	if item.Kind == rlp.KindBytes {
		if len(item.Bytes) == 0 {
			return nil, nil
		}
		if len(item.Bytes) == 32 {
			return hashNode(item.Bytes), nil
		}
		return nil, errors.New("trie: unexpected byte node")
	}
	switch len(item.Items) {
	case 2:
		key := compactToHex(item.Items[0].Bytes)
		if hasTerminator(key) {
			return &shortNode{Key: key, Val: valueNode(item.Items[1].Bytes)}, nil
		}
		child, err := decodeRef(item.Items[1])
		if err != nil {
			return nil, err
		}
		return &shortNode{Key: key, Val: child}, nil
	case 17:
		fn := &fullNode{}
		for i := 0; i < 16; i++ {
			child, err := decodeRef(item.Items[i])
			if err != nil {
				return nil, err
			}
			fn.Children[i] = child
		}
		if len(item.Items[16].Bytes) > 0 {
			fn.Children[16] = valueNode(item.Items[16].Bytes)
		}
		return fn, nil
	default:
		return nil, fmt.Errorf("trie: invalid node arity %d", len(item.Items))
	}
}

func decodeRef(item *rlp.Item) (node, error) {
	if item.Kind == rlp.KindList {
		return decodeNode(item)
	}
	if len(item.Bytes) == 0 {
		return nil, nil
	}
	if len(item.Bytes) == 32 {
		return hashNode(item.Bytes), nil
	}
	return nil, fmt.Errorf("trie: invalid node reference of %d bytes", len(item.Bytes))
}

// encodeNode builds the RLP item tree for a node.
func (t *Trie) encodeNode(n node) *rlp.Item {
	switch n := n.(type) {
	case nil:
		return rlp.Bytes(nil)
	case valueNode:
		return rlp.Bytes(n)
	case hashNode:
		return rlp.Bytes(n)
	case *shortNode:
		return rlp.List(rlp.Bytes(hexToCompact(n.Key)), t.encodeRef(n.Val))
	case *fullNode:
		items := make([]*rlp.Item, 17)
		for i := 0; i < 16; i++ {
			items[i] = t.encodeRef(n.Children[i])
		}
		if v, ok := n.Children[16].(valueNode); ok {
			items[16] = rlp.Bytes(v)
		} else {
			items[16] = rlp.Bytes(nil)
		}
		return rlp.List(items...)
	default:
		panic(fmt.Sprintf("trie: unknown node type %T", n))
	}
}

// encodeRef returns the reference encoding of a child: inline if its
// encoding is under 32 bytes, otherwise the keccak hash (persisting the
// node to the database).
func (t *Trie) encodeRef(n node) *rlp.Item {
	switch n := n.(type) {
	case nil:
		return rlp.Bytes(nil)
	case valueNode:
		return rlp.Bytes(n)
	case hashNode:
		return rlp.Bytes(n)
	}
	item := t.encodeNode(n)
	enc := rlp.Encode(item)
	if len(enc) < 32 {
		return item
	}
	h := types.Hash(keccak.Sum256(enc))
	t.db.put(h, enc)
	return rlp.Bytes(h.Bytes())
}

// parallelMinChildren is the fan-out threshold: a top-level branch with
// fewer occupied children than this is hashed serially, since goroutine
// startup would cost more than the subtree work it hides.
const parallelMinChildren = 4

// Hash computes the root commitment, persisting hashed nodes to the
// database, and collapses the in-memory tree to its root hash. Without
// the collapse, every node ever expanded by an Update would be re-encoded
// and re-keccak'd by every later Hash call, making a long-lived trie's
// commits O(trie size) instead of O(touched paths): subsequent operations
// re-resolve just the paths they walk from the node store.
//
// On multi-core hosts the subtrees under the top-level branch are hashed
// in parallel: each of the 16 nibble children is an independent Merkle
// subtree whose encode/hash/persist work shares nothing with its siblings
// except the (mutex-guarded) node store.
func (t *Trie) Hash() types.Hash {
	return t.hash(runtime.GOMAXPROCS(0))
}

// hash is Hash with an explicit worker bound (tests exercise the parallel
// path regardless of the host's core count through this).
func (t *Trie) hash(workers int) types.Hash {
	if t.root == nil {
		return EmptyRoot
	}
	// Already collapsed and unchanged since: the stored hash IS the root.
	// Re-encoding the 32-byte reference would hash the reference itself
	// and return a bogus root.
	if h, ok := t.root.(hashNode); ok {
		return types.BytesToHash(h)
	}
	var item *rlp.Item
	if workers > 1 {
		switch n := t.root.(type) {
		case *fullNode:
			item = t.encodeFullParallel(n, workers)
		case *shortNode:
			// A trie rooted at an extension: the branch below it is where
			// the fan-out lives.
			if fn, ok := n.Val.(*fullNode); ok {
				child := t.refFromItem(t.encodeFullParallel(fn, workers))
				item = rlp.List(rlp.Bytes(hexToCompact(n.Key)), child)
			}
		}
	}
	if item == nil {
		item = t.encodeNode(t.root)
	}
	enc := rlp.Encode(item)
	h := types.Hash(keccak.Sum256(enc))
	t.db.put(h, enc)
	t.root = hashNode(h.Bytes())
	return h
}

// encodeFullParallel encodes a branch node with its children fanned across
// at most workers goroutines. Each child's encodeRef walks, encodes, and
// persists its whole subtree independently; results land positionally so
// the assembled encoding is byte-identical to the serial one.
func (t *Trie) encodeFullParallel(fn *fullNode, workers int) *rlp.Item {
	occupied := 0
	for i := 0; i < 16; i++ {
		if fn.Children[i] != nil {
			occupied++
		}
	}
	if occupied < parallelMinChildren {
		return t.encodeNode(fn)
	}
	items := make([]*rlp.Item, 17)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		child := fn.Children[i]
		if child == nil {
			items[i] = rlp.Bytes(nil)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, child node) {
			defer wg.Done()
			items[i] = t.encodeRef(child)
			<-sem
		}(i, child)
	}
	wg.Wait()
	if v, ok := fn.Children[16].(valueNode); ok {
		items[16] = rlp.Bytes(v)
	} else {
		items[16] = rlp.Bytes(nil)
	}
	return rlp.List(items...)
}

// refFromItem applies the commitment rule (inline under 32 bytes, hash
// reference otherwise) to an already-built node item.
func (t *Trie) refFromItem(item *rlp.Item) *rlp.Item {
	enc := rlp.Encode(item)
	if len(enc) < 32 {
		return item
	}
	h := types.Hash(keccak.Sum256(enc))
	t.db.put(h, enc)
	return rlp.Bytes(h.Bytes())
}

// FromRoot rebuilds a trie handle from a previously committed root.
func FromRoot(db *Database, root types.Hash) (*Trie, error) {
	t := New(db)
	if root == EmptyRoot || root.IsZero() {
		return t, nil
	}
	if _, ok := db.Node(root); !ok {
		return nil, fmt.Errorf("trie: unknown root %s", root.Hex())
	}
	t.root = hashNode(root.Bytes())
	return t, nil
}

// Prove returns the Merkle proof for key: the ordered list of RLP node
// encodings from the root towards the key.
func (t *Trie) Prove(key []byte) [][]byte {
	t.Hash() // ensure hashes are current and nodes persisted
	var proof [][]byte
	n := t.root
	nibbles := keybytesToHex(key)
	for {
		switch cur := n.(type) {
		case nil:
			return proof
		case valueNode:
			return proof
		case hashNode:
			resolved, err := t.resolve(cur)
			if err != nil {
				return proof
			}
			n = resolved
			continue
		case *shortNode:
			enc := rlp.Encode(t.encodeNode(cur))
			if len(enc) >= 32 || len(proof) == 0 {
				proof = append(proof, enc)
			}
			if len(nibbles) < len(cur.Key) || !bytes.Equal(cur.Key, nibbles[:len(cur.Key)]) {
				return proof
			}
			nibbles = nibbles[len(cur.Key):]
			n = cur.Val
		case *fullNode:
			enc := rlp.Encode(t.encodeNode(cur))
			if len(enc) >= 32 || len(proof) == 0 {
				proof = append(proof, enc)
			}
			if len(nibbles) == 0 {
				n = cur.Children[16]
			} else {
				n = cur.Children[nibbles[0]]
				nibbles = nibbles[1:]
			}
		default:
			return proof
		}
	}
}

// VerifyProof checks a Merkle proof against a root and returns the proven
// value (nil for a proven absence).
func VerifyProof(root types.Hash, key []byte, proof [][]byte) ([]byte, error) {
	if len(proof) == 0 {
		if root == EmptyRoot {
			return nil, nil
		}
		return nil, errors.New("trie: empty proof for non-empty root")
	}
	nibbles := keybytesToHex(key)
	expected := root.Bytes()
	idx := 0
	var current node
	for {
		if idx >= len(proof) {
			return nil, errors.New("trie: proof exhausted")
		}
		enc := proof[idx]
		if !bytes.Equal(keccak.Sum256Bytes(enc), expected) {
			return nil, errors.New("trie: proof node hash mismatch")
		}
		item, err := rlp.Decode(enc)
		if err != nil {
			return nil, err
		}
		current, err = decodeNode(item)
		if err != nil {
			return nil, err
		}
		idx++
		// Walk within this (possibly inline-nested) node until we hit a
		// hash reference or a conclusion.
		for {
			switch n := current.(type) {
			case nil:
				return nil, nil // proven absent
			case valueNode:
				if len(nibbles) == 0 || (len(nibbles) == 1 && nibbles[0] == 16) {
					return []byte(n), nil
				}
				return nil, nil
			case *shortNode:
				if len(nibbles) < len(n.Key) || !bytes.Equal(n.Key, nibbles[:len(n.Key)]) {
					return nil, nil // divergence proves absence
				}
				nibbles = nibbles[len(n.Key):]
				current = n.Val
			case *fullNode:
				if len(nibbles) == 0 {
					current = n.Children[16]
				} else {
					current = n.Children[nibbles[0]]
					nibbles = nibbles[1:]
				}
			case hashNode:
				expected = []byte(n)
				goto nextProofNode
			default:
				return nil, fmt.Errorf("trie: unexpected node %T in proof", n)
			}
		}
	nextProofNode:
	}
}

// SecureTrie wraps Trie with keccak-hashed keys, preventing key-length
// attacks (this is what Ethereum's state and storage tries use).
type SecureTrie struct {
	inner *Trie
}

// NewSecure creates an empty secure trie.
func NewSecure(db *Database) *SecureTrie {
	return &SecureTrie{inner: New(db)}
}

// NewSecureFromRoot opens a secure trie at a previously committed root.
func NewSecureFromRoot(db *Database, root types.Hash) (*SecureTrie, error) {
	inner, err := FromRoot(db, root)
	if err != nil {
		return nil, err
	}
	return &SecureTrie{inner: inner}, nil
}

// Database exposes the underlying node store.
func (s *SecureTrie) Database() *Database { return s.inner.db }

// Get fetches the value for the (pre-hash) key.
func (s *SecureTrie) Get(key []byte) []byte {
	return s.inner.Get(keccak.Sum256Bytes(key))
}

// Update sets the value for the (pre-hash) key.
func (s *SecureTrie) Update(key, value []byte) {
	s.inner.Update(keccak.Sum256Bytes(key), value)
}

// Delete removes the (pre-hash) key.
func (s *SecureTrie) Delete(key []byte) {
	s.inner.Delete(keccak.Sum256Bytes(key))
}

// Hash returns the root commitment.
func (s *SecureTrie) Hash() types.Hash { return s.inner.Hash() }
