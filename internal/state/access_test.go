package state

import (
	"bytes"
	"sync"
	"testing"

	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// committedBase builds a StateDB with a few committed accounts: a funded
// EOA at 0x01, a contract at 0x02 with code and storage.
func committedBase(t *testing.T) *StateDB {
	t.Helper()
	s := New()
	s.SetBalance(addr(1), uint256.NewInt(1_000_000))
	s.SetNonce(addr(1), 7)
	s.SetBalance(addr(2), uint256.NewInt(1))
	s.SetCode(addr(2), []byte{0x60, 0x00})
	s.SetState(addr(2), slot(1), slot(0xAA))
	s.Finalise()
	s.Commit()
	return s
}

func TestRecordingFootprint(t *testing.T) {
	s := committedBase(t)
	f := s.ForkRecording()

	f.GetBalance(addr(1))
	f.GetNonce(addr(1))
	f.GetCode(addr(2))
	f.GetState(addr(2), slot(1))
	f.GetCommittedState(addr(2), slot(2))
	f.AddBalance(addr(3), uint256.NewInt(5))
	f.SetNonce(addr(1), 8)
	f.SetState(addr(2), slot(3), slot(0xBB))

	a := f.TakeAccess()
	if a == nil {
		t.Fatal("TakeAccess returned nil after ForkRecording")
	}
	for _, want := range []types.Address{addr(1), addr(2)} {
		if _, ok := a.ReadAccount[want]; !ok {
			t.Errorf("account read of %x not recorded", want)
		}
	}
	for _, want := range []SlotKey{{addr(2), slot(1)}, {addr(2), slot(2)}} {
		if _, ok := a.ReadSlot[want]; !ok {
			t.Errorf("slot read %x/%x not recorded", want.Addr, want.Slot)
		}
	}
	if a.WriteAccount[addr(3)]&wBalance == 0 {
		t.Error("balance write not recorded")
	}
	if a.WriteAccount[addr(1)]&wNonce == 0 {
		t.Error("nonce write not recorded")
	}
	if _, ok := a.WriteSlot[SlotKey{addr(2), slot(3)}]; !ok {
		t.Error("slot write not recorded")
	}
	// Recording stops with TakeAccess.
	f.SetBalance(addr(9), uint256.NewInt(1))
	if got := f.TakeAccess(); got != nil {
		t.Error("second TakeAccess returned a footprint after recording stopped")
	}
}

func TestAccessIndexConflicts(t *testing.T) {
	writerA := newAccess()
	writerA.WriteAccount[addr(1)] = wBalance
	writerA.WriteSlot[SlotKey{addr(2), slot(1)}] = struct{}{}

	ix := NewAccessIndex()
	ix.Add(writerA)

	// Account read vs account write: conflict.
	r1 := newAccess()
	r1.ReadAccount[addr(1)] = struct{}{}
	if !ix.Conflicts(r1) {
		t.Error("account read vs account write missed")
	}
	// Same slot: conflict. Different slot of the same contract: no conflict.
	r2 := newAccess()
	r2.ReadSlot[SlotKey{addr(2), slot(1)}] = struct{}{}
	if !ix.Conflicts(r2) {
		t.Error("slot read vs slot write missed")
	}
	r3 := newAccess()
	r3.ReadSlot[SlotKey{addr(2), slot(9)}] = struct{}{}
	r3.ReadAccount[addr(2)] = struct{}{} // code read of the contract
	if ix.Conflicts(r3) {
		t.Error("disjoint slot + code read flagged: account writes must not shadow slot granularity")
	}
	// Write-write: conflict (blind increments would be lost on replay).
	w1 := newAccess()
	w1.WriteAccount[addr(1)] = wBalance
	if !ix.Conflicts(w1) {
		t.Error("write-write missed")
	}
	// Destroyed account: wildcard over all its slots.
	killer := newAccess()
	killer.WriteAccount[addr(2)] = wDestroyed
	ix2 := NewAccessIndex()
	ix2.Add(killer)
	if !ix2.Conflicts(r3) {
		t.Error("slot read of destroyed account missed")
	}
}

func TestAccessTouches(t *testing.T) {
	a := newAccess()
	a.ReadSlot[SlotKey{addr(4), slot(2)}] = struct{}{}
	if !a.Touches(addr(4)) {
		t.Error("slot read not seen by Touches")
	}
	if a.Touches(addr(5)) {
		t.Error("untouched address reported")
	}
	a.WriteSlot[SlotKey{addr(5), slot(0)}] = struct{}{}
	if !a.Touches(addr(5)) {
		t.Error("slot write not seen by Touches")
	}
}

// TestExtractApplyRoundtrip: run mutations on a recording fork, extract the
// write set, replay it onto a second fork of the same base — the commit
// roots must coincide.
func TestExtractApplyRoundtrip(t *testing.T) {
	base := committedBase(t)

	f := base.ForkRecording()
	f.SubBalance(addr(1), uint256.NewInt(1000))
	f.SetNonce(addr(1), 8)
	f.CreateAccount(addr(7))
	f.SetBalance(addr(7), uint256.NewInt(42))
	f.SetCode(addr(7), []byte{0xFE})
	f.SetState(addr(2), slot(1), slot(0xCC))
	f.SetState(addr(2), slot(5), slot(0xDD))
	f.Finalise()
	access := f.TakeAccess()
	ws := f.ExtractWrites(access)
	f.Commit()
	wantRoot := f.Root()

	g := base.Fork()
	g.ApplyWrites(ws)
	g.Finalise()
	g.Commit()
	if g.Root() != wantRoot {
		t.Fatalf("replayed root %x != executed root %x", g.Root(), wantRoot)
	}
	if !bytes.Equal(g.GetCode(addr(7)), []byte{0xFE}) {
		t.Error("replay lost created account's code")
	}
}

// TestExtractSkipsReverted: a write that was journal-reverted extracts the
// block-start value (or nothing, for a reverted creation) so its replay is
// a value-level no-op.
func TestExtractSkipsReverted(t *testing.T) {
	base := committedBase(t)
	f := base.ForkRecording()

	snap := f.Snapshot()
	f.CreateAccount(addr(8))
	f.SetBalance(addr(8), uint256.NewInt(5))
	f.SetState(addr(2), slot(6), slot(0xEE))
	f.RevertToSnapshot(snap)
	f.SetState(addr(2), slot(1), slot(0xAB)) // a surviving write
	f.Finalise()

	access := f.TakeAccess()
	ws := f.ExtractWrites(access)
	for _, aw := range ws.Accounts {
		if aw.Addr == addr(8) {
			t.Fatal("reverted account creation extracted")
		}
		for _, sw := range aw.Slots {
			if sw.Slot == slot(6) {
				t.Fatal("reverted slot write extracted")
			}
		}
	}

	g := base.Fork()
	g.ApplyWrites(ws)
	g.Finalise()
	if got := g.GetState(addr(2), slot(1)); got != slot(0xAB) {
		t.Errorf("surviving write lost: %x", got)
	}
}

// TestExtractSelfDestruct: a destroyed account extracts as a destroy and
// replays to the same post-Finalise deletion.
func TestExtractSelfDestruct(t *testing.T) {
	base := committedBase(t)
	f := base.ForkRecording()
	f.SelfDestruct(addr(2))
	f.Finalise()
	access := f.TakeAccess()
	ws := f.ExtractWrites(access)
	f.Commit()

	g := base.Fork()
	g.ApplyWrites(ws)
	g.Finalise()
	g.Commit()
	if g.Root() != f.Root() {
		t.Fatalf("destroy replay root %x != executed %x", g.Root(), f.Root())
	}
	if g.Exist(addr(2)) {
		t.Error("destroyed account still exists after replay")
	}
}

// TestForkIsolation: a fork sees only the committed root; parent dirt stays
// invisible, fork dirt never leaks back.
func TestForkIsolation(t *testing.T) {
	base := committedBase(t)
	base.SetBalance(addr(1), uint256.NewInt(77)) // uncommitted parent dirt

	f := base.Fork()
	if got := f.GetBalance(addr(1)); !got.Eq(uint256.NewInt(1_000_000)) {
		t.Errorf("fork sees uncommitted parent write: %s", got)
	}
	f.SetBalance(addr(1), uint256.NewInt(5))
	f.SetState(addr(2), slot(1), slot(0xFF))
	if got := base.GetBalance(addr(1)); !got.Eq(uint256.NewInt(77)) {
		t.Errorf("fork write leaked into parent: %s", got)
	}
	if got := base.GetState(addr(2), slot(1)); got != slot(0xAA) {
		t.Errorf("fork storage write leaked into parent: %x", got)
	}
}

// TestForkRecordingCodeIsolation: concurrent forks SetCode without racing
// on the parent's content-addressed code store, and still read parent code
// through the fallback.
func TestForkRecordingCodeIsolation(t *testing.T) {
	base := committedBase(t)
	f1 := base.ForkRecording()
	f2 := base.ForkRecording()

	f1.SetCode(addr(10), []byte{0x01})
	f2.SetCode(addr(10), []byte{0x02})
	if !bytes.Equal(f1.GetCode(addr(10)), []byte{0x01}) || !bytes.Equal(f2.GetCode(addr(10)), []byte{0x02}) {
		t.Error("fork-private code stores bleed into each other")
	}
	// Parent code reachable through the fallback store.
	if !bytes.Equal(f1.GetCode(addr(2)), []byte{0x60, 0x00}) {
		t.Error("fork lost access to parent code")
	}
	// Copy of a fork flattens the fallback so the copy stands alone.
	cp := f1.Copy()
	if !bytes.Equal(cp.GetCode(addr(2)), []byte{0x60, 0x00}) {
		t.Error("copy lost fallback code")
	}
	if !bytes.Equal(cp.GetCode(addr(10)), []byte{0x01}) {
		t.Error("copy lost fork-private code")
	}
}

// TestConcurrentForks is the race-detector workout for the speculative
// substrate: many recording forks of one committed parent, all executing
// reads and writes (including code-store writes) concurrently.
func TestConcurrentForks(t *testing.T) {
	base := committedBase(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n byte) {
			defer wg.Done()
			f := base.ForkRecording()
			for j := 0; j < 50; j++ {
				f.GetBalance(addr(1))
				f.GetState(addr(2), slot(1))
				f.GetCode(addr(2))
				f.AddBalance(addr(20+n), uint256.NewInt(uint64(j)))
				f.SetState(addr(2), slot(n), slot(n))
				f.SetCode(addr(20+n), []byte{n, byte(j)})
				snap := f.Snapshot()
				f.SetBalance(addr(40+n), uint256.NewInt(1))
				f.RevertToSnapshot(snap)
			}
			f.Finalise()
			a := f.TakeAccess()
			if ws := f.ExtractWrites(a); len(ws.Accounts) == 0 {
				t.Error("empty write set from mutating fork")
			}
		}(byte(i))
	}
	wg.Wait()
	// The parent never saw any of it.
	if base.Exist(addr(21)) {
		t.Error("fork account leaked into parent")
	}
	if got := base.GetBalance(addr(1)); !got.Eq(uint256.NewInt(1_000_000)) {
		t.Errorf("parent balance disturbed: %s", got)
	}
}

// TestSnapshotRevertAcrossForkReads: journal revert inside a fork restores
// values loaded lazily from the committed trie.
func TestSnapshotRevertAcrossForkReads(t *testing.T) {
	base := committedBase(t)
	f := base.Fork()
	snap := f.Snapshot()
	f.SetBalance(addr(1), uint256.NewInt(3))
	f.SetState(addr(2), slot(1), slot(0x11))
	f.RevertToSnapshot(snap)
	if got := f.GetBalance(addr(1)); !got.Eq(uint256.NewInt(1_000_000)) {
		t.Errorf("revert lost trie-loaded balance: %s", got)
	}
	if got := f.GetState(addr(2), slot(1)); got != slot(0xAA) {
		t.Errorf("revert lost trie-loaded storage: %x", got)
	}
}

func TestResetRefund(t *testing.T) {
	s := New()
	s.AddRefund(100)
	s.SubRefund(40)
	if s.GetRefund() != 60 {
		t.Fatalf("refund = %d", s.GetRefund())
	}
	s.ResetRefund()
	if s.GetRefund() != 0 {
		t.Error("ResetRefund left a residue")
	}
}

// TestDirtySetIsolationAcrossCommit: committing a fork does not disturb the
// parent or sibling forks mid-flight.
func TestDirtySetIsolationAcrossCommit(t *testing.T) {
	base := committedBase(t)
	f1 := base.Fork()
	f2 := base.Fork()
	f1.SetBalance(addr(1), uint256.NewInt(111))
	f1.Finalise()
	f1.Commit()
	if got := f2.GetBalance(addr(1)); !got.Eq(uint256.NewInt(1_000_000)) {
		t.Errorf("sibling fork observed f1's commit: %s", got)
	}
	if got := base.GetBalance(addr(1)); !got.Eq(uint256.NewInt(1_000_000)) {
		t.Errorf("parent observed f1's commit: %s", got)
	}
}
