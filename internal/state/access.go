// Read/write-set instrumentation for optimistic parallel transaction
// execution (chain's exec=parallel engine). A recording StateDB tracks the
// footprint of one speculative transaction run on a forked state:
//
//   - reads at account granularity (balance, nonce, code, existence — any
//     field: per-field tracking buys nothing because the write half is
//     replayed per field anyway, and the common conflicts are whole-account)
//     and at slot granularity for storage;
//   - writes at the same granularity, with the FINAL values extracted from
//     the fork afterwards (ExtractWrites) so a non-conflicting transaction
//     can be replayed onto the canonical state (ApplyWrites) without
//     re-running the EVM.
//
// Two transactions conflict when one's footprint (reads OR writes) overlaps
// the other's WRITES. Reads must see earlier writes (serial semantics), and
// writes must not clobber earlier writes (replay applies final values
// computed against block-start state, so a later write over an earlier one
// would silently discard it). Account reads do NOT conflict with storage
// writes of the same account and vice versa: calling a contract reads its
// code, not the slots another transaction is writing.
package state

import (
	"sort"

	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// SlotKey identifies one storage slot of one account.
type SlotKey struct {
	Addr types.Address
	Slot types.Hash
}

// Access is the recorded read/write footprint of one transaction.
type Access struct {
	ReadAccount  map[types.Address]struct{}
	ReadSlot     map[SlotKey]struct{}
	WriteAccount map[types.Address]writeFlags
	WriteSlot    map[SlotKey]struct{}
}

type writeFlags uint8

const (
	wBalance writeFlags = 1 << iota
	wNonce
	wCode
	wCreated
	wDestroyed
)

func newAccess() *Access {
	return &Access{
		ReadAccount:  make(map[types.Address]struct{}),
		ReadSlot:     make(map[SlotKey]struct{}),
		WriteAccount: make(map[types.Address]writeFlags),
		WriteSlot:    make(map[SlotKey]struct{}),
	}
}

// Touches reports whether the footprint involves addr at all — reads,
// account-field writes, or storage access. The parallel executor uses it to
// force serial re-execution of any transaction that touches the coinbase
// account, whose fee credits are applied commutatively outside the recorded
// footprint.
func (a *Access) Touches(addr types.Address) bool {
	if _, ok := a.ReadAccount[addr]; ok {
		return true
	}
	if _, ok := a.WriteAccount[addr]; ok {
		return true
	}
	for k := range a.ReadSlot {
		if k.Addr == addr {
			return true
		}
	}
	for k := range a.WriteSlot {
		if k.Addr == addr {
			return true
		}
	}
	return false
}

// AccessIndex aggregates the write sets of already-committed transactions
// in a block, so each candidate's conflict check is O(its own footprint).
type AccessIndex struct {
	accounts  map[types.Address]struct{}
	slots     map[SlotKey]struct{}
	destroyed map[types.Address]struct{} // whole-account wildcard: slot reads of a destroyed account conflict
}

// NewAccessIndex returns an empty index.
func NewAccessIndex() *AccessIndex {
	return &AccessIndex{
		accounts:  make(map[types.Address]struct{}),
		slots:     make(map[SlotKey]struct{}),
		destroyed: make(map[types.Address]struct{}),
	}
}

// Add merges a committed transaction's write half into the index.
func (ix *AccessIndex) Add(a *Access) {
	for addr, flags := range a.WriteAccount {
		ix.accounts[addr] = struct{}{}
		if flags&wDestroyed != 0 {
			ix.destroyed[addr] = struct{}{}
		}
	}
	for k := range a.WriteSlot {
		ix.slots[k] = struct{}{}
	}
}

// Conflicts reports whether a's footprint (reads and writes) intersects
// the writes committed so far.
func (ix *AccessIndex) Conflicts(a *Access) bool {
	for addr := range a.ReadAccount {
		if _, ok := ix.accounts[addr]; ok {
			return true
		}
	}
	for addr := range a.WriteAccount {
		if _, ok := ix.accounts[addr]; ok {
			return true
		}
	}
	for k := range a.ReadSlot {
		if _, ok := ix.slots[k]; ok {
			return true
		}
		if _, ok := ix.destroyed[k.Addr]; ok {
			return true
		}
	}
	for k := range a.WriteSlot {
		if _, ok := ix.slots[k]; ok {
			return true
		}
		if _, ok := ix.destroyed[k.Addr]; ok {
			return true
		}
	}
	return false
}

// SlotWrite is one storage write with its final value.
type SlotWrite struct {
	Slot  types.Hash
	Value types.Hash
}

// AccountWrite carries the final post-transaction values of every written
// field of one account.
type AccountWrite struct {
	Addr      types.Address
	Flags     writeFlags
	Balance   *uint256.Int
	Nonce     uint64
	Code      []byte
	Destroyed bool
	Slots     []SlotWrite
}

// WriteSet is the value-carrying form of an Access's write half, extracted
// from the fork that executed the transaction and replayable onto the
// canonical state. Accounts and slots are sorted so replay is deterministic
// regardless of map iteration order.
type WriteSet struct {
	Accounts []AccountWrite
}

// StartRecording begins read/write-set capture on s. Footprints of
// mutations already applied are not reconstructed — start recording before
// executing the transaction.
func (s *StateDB) StartRecording() {
	s.rec = newAccess()
}

// TakeAccess stops recording and returns the captured footprint (nil if
// recording was never started).
func (s *StateDB) TakeAccess() *Access {
	a := s.rec
	s.rec = nil
	return a
}

// ForkRecording is Fork with read/write-set capture enabled — the
// speculative execution substrate of the parallel block executor. Unlike
// plain Fork the returned state also gets a PRIVATE code store layered over
// the parent's, so concurrent forks can SetCode without racing on the
// shared content-addressed map. The parent must not mutate its code store
// while forks are live (the chain executes forks strictly between commits,
// with the chain lock held).
func (s *StateDB) ForkRecording() *StateDB {
	f := s.Fork()
	f.codes = make(map[types.Hash][]byte)
	f.fallbackCodes = s.codes
	f.StartRecording()
	return f
}

func (s *StateDB) recordAccountRead(addr types.Address) {
	if s.rec != nil {
		s.rec.ReadAccount[addr] = struct{}{}
	}
}

func (s *StateDB) recordSlotRead(addr types.Address, slot types.Hash) {
	if s.rec != nil {
		s.rec.ReadSlot[SlotKey{addr, slot}] = struct{}{}
	}
}

func (s *StateDB) recordAccountWrite(addr types.Address, f writeFlags) {
	if s.rec != nil {
		s.rec.WriteAccount[addr] |= f
	}
}

func (s *StateDB) recordSlotWrite(addr types.Address, slot types.Hash) {
	if s.rec != nil {
		s.rec.WriteSlot[SlotKey{addr, slot}] = struct{}{}
	}
}

// ExtractWrites reads the final values of every write in a's footprint out
// of s (the fork that executed the transaction, after Finalise). Writes
// that were reverted leave their key recorded but their value unchanged;
// extraction simply reads whatever the fork ended up with, which for a
// fully reverted account equals the block-start value — replaying it is a
// no-op by value. Accounts journalled dirty but absent from the object
// cache (created then reverted away) are skipped entirely.
func (s *StateDB) ExtractWrites(a *Access) *WriteSet {
	perAddr := make(map[types.Address]*AccountWrite)
	get := func(addr types.Address) *AccountWrite {
		if w, ok := perAddr[addr]; ok {
			return w
		}
		w := &AccountWrite{Addr: addr}
		perAddr[addr] = w
		return w
	}
	for addr, flags := range a.WriteAccount {
		obj, ok := s.objects[addr]
		if !ok {
			continue // created then reverted: nothing survives
		}
		w := get(addr)
		if obj.deleted || obj.selfDestructed {
			w.Destroyed = true
			w.Flags |= wDestroyed
			continue
		}
		if flags&wBalance != 0 {
			w.Flags |= wBalance
			w.Balance = obj.account.Balance.Clone()
		}
		if flags&wNonce != 0 {
			w.Flags |= wNonce
			w.Nonce = obj.account.Nonce
		}
		if flags&wCode != 0 {
			w.Flags |= wCode
			w.Code = append([]byte{}, obj.code...)
		}
		if flags&wCreated != 0 {
			w.Flags |= wCreated
		}
	}
	for k := range a.WriteSlot {
		obj, ok := s.objects[k.Addr]
		if !ok || obj.deleted || obj.selfDestructed {
			continue // account gone: the destroy (recorded above) subsumes slot writes
		}
		v, ok := obj.storage[k.Slot]
		if !ok {
			continue // write reverted: the slot still holds its committed value
		}
		w := get(k.Addr)
		w.Slots = append(w.Slots, SlotWrite{Slot: k.Slot, Value: v})
	}
	ws := &WriteSet{Accounts: make([]AccountWrite, 0, len(perAddr))}
	for _, w := range perAddr {
		sort.Slice(w.Slots, func(i, j int) bool {
			return string(w.Slots[i].Slot.Bytes()) < string(w.Slots[j].Slot.Bytes())
		})
		ws.Accounts = append(ws.Accounts, *w)
	}
	sort.Slice(ws.Accounts, func(i, j int) bool {
		return string(ws.Accounts[i].Addr.Bytes()) < string(ws.Accounts[j].Addr.Bytes())
	})
	return ws
}

// ApplyWrites replays a write set onto s through the ordinary mutation API,
// so journaling, dirty tracking and the eventual Commit behave exactly as
// if the values had been written by in-place execution. The caller is
// responsible for Finalise at the transaction boundary (self-destructs
// become deletions there, as usual).
func (s *StateDB) ApplyWrites(w *WriteSet) {
	for i := range w.Accounts {
		aw := &w.Accounts[i]
		if aw.Destroyed {
			s.SelfDestruct(aw.Addr)
			continue
		}
		if aw.Flags&wCreated != 0 {
			s.CreateAccount(aw.Addr)
		}
		if aw.Flags&wBalance != 0 {
			s.SetBalance(aw.Addr, aw.Balance)
		}
		if aw.Flags&wNonce != 0 {
			s.SetNonce(aw.Addr, aw.Nonce)
		}
		if aw.Flags&wCode != 0 {
			s.SetCode(aw.Addr, aw.Code)
		}
		for _, sw := range aw.Slots {
			s.SetState(aw.Addr, sw.Slot, sw.Value)
		}
	}
}
