package state

import (
	"testing"

	"onoffchain/internal/trie"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

func addr(b byte) types.Address { return types.BytesToAddress([]byte{b}) }
func slot(b byte) types.Hash    { return types.BytesToHash([]byte{b}) }

func TestBalanceOperations(t *testing.T) {
	s := New()
	a := addr(1)
	if !s.GetBalance(a).IsZero() {
		t.Error("fresh account has balance")
	}
	s.AddBalance(a, uint256.NewInt(100))
	s.SubBalance(a, uint256.NewInt(30))
	if got := s.GetBalance(a); got.Uint64() != 70 {
		t.Errorf("balance = %s, want 70", got)
	}
	s.SetBalance(a, uint256.NewInt(5))
	if got := s.GetBalance(a); got.Uint64() != 5 {
		t.Errorf("balance = %s, want 5", got)
	}
	// GetBalance must return a copy, not an alias.
	b := s.GetBalance(a)
	b.SetUint64(9999)
	if s.GetBalance(a).Uint64() != 5 {
		t.Error("GetBalance leaks internal pointer")
	}
}

func TestNonceAndCode(t *testing.T) {
	s := New()
	a := addr(2)
	s.SetNonce(a, 7)
	if s.GetNonce(a) != 7 {
		t.Error("nonce mismatch")
	}
	code := []byte{0x60, 0x00, 0x60, 0x00, 0xf3}
	s.SetCode(a, code)
	if got := s.GetCode(a); string(got) != string(code) {
		t.Errorf("code = %x", got)
	}
	if s.GetCodeSize(a) != len(code) {
		t.Error("code size mismatch")
	}
	if s.GetCodeHash(a) == types.EmptyCodeHash {
		t.Error("code hash not updated")
	}
	if s.GetCodeHash(addr(99)) != (types.Hash{}) {
		t.Error("missing account should have zero code hash")
	}
}

func TestStorage(t *testing.T) {
	s := New()
	a := addr(3)
	k, v := slot(1), slot(0xAB)
	if !s.GetState(a, k).IsZero() {
		t.Error("fresh slot not zero")
	}
	s.SetState(a, k, v)
	if s.GetState(a, k) != v {
		t.Error("slot readback mismatch")
	}
	// Committed state is still the original (zero) until Commit.
	if !s.GetCommittedState(a, k).IsZero() {
		t.Error("committed state changed before commit")
	}
	s.Commit()
	if s.GetCommittedState(a, k) != v {
		t.Error("committed state not updated after commit")
	}
}

func TestSnapshotRevert(t *testing.T) {
	s := New()
	a := addr(4)
	s.AddBalance(a, uint256.NewInt(1000))
	s.SetNonce(a, 1)
	s.SetState(a, slot(1), slot(10))

	snap := s.Snapshot()
	s.SubBalance(a, uint256.NewInt(999))
	s.SetNonce(a, 42)
	s.SetState(a, slot(1), slot(99))
	s.SetState(a, slot(2), slot(77))
	s.SetCode(a, []byte{1, 2, 3})

	s.RevertToSnapshot(snap)

	if got := s.GetBalance(a); got.Uint64() != 1000 {
		t.Errorf("balance after revert = %s", got)
	}
	if s.GetNonce(a) != 1 {
		t.Errorf("nonce after revert = %d", s.GetNonce(a))
	}
	if s.GetState(a, slot(1)) != slot(10) {
		t.Error("slot 1 not reverted")
	}
	if !s.GetState(a, slot(2)).IsZero() {
		t.Error("slot 2 not reverted")
	}
	if s.GetCode(a) != nil {
		t.Error("code not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New()
	a := addr(5)
	s.AddBalance(a, uint256.NewInt(10))
	s1 := s.Snapshot()
	s.AddBalance(a, uint256.NewInt(10))
	s2 := s.Snapshot()
	s.AddBalance(a, uint256.NewInt(10))
	s.RevertToSnapshot(s2)
	if s.GetBalance(a).Uint64() != 20 {
		t.Errorf("after inner revert: %s", s.GetBalance(a))
	}
	s.RevertToSnapshot(s1)
	if s.GetBalance(a).Uint64() != 10 {
		t.Errorf("after outer revert: %s", s.GetBalance(a))
	}
}

func TestRevertAccountCreation(t *testing.T) {
	s := New()
	a := addr(6)
	snap := s.Snapshot()
	s.AddBalance(a, uint256.NewInt(1))
	if !s.Exist(a) {
		t.Fatal("account not created")
	}
	s.RevertToSnapshot(snap)
	if s.Exist(a) {
		t.Error("account creation not reverted")
	}
}

func TestSelfDestruct(t *testing.T) {
	s := New()
	a := addr(7)
	s.AddBalance(a, uint256.NewInt(500))
	s.SetCode(a, []byte{0xff})

	snap := s.Snapshot()
	s.SelfDestruct(a)
	if !s.HasSelfDestructed(a) || !s.GetBalance(a).IsZero() {
		t.Error("selfdestruct not applied")
	}
	s.RevertToSnapshot(snap)
	if s.HasSelfDestructed(a) || s.GetBalance(a).Uint64() != 500 {
		t.Error("selfdestruct not reverted")
	}

	s.SelfDestruct(a)
	s.Commit()
	if s.Exist(a) {
		t.Error("selfdestructed account survived commit")
	}
}

func TestRefundCounter(t *testing.T) {
	s := New()
	s.AddRefund(15000)
	s.AddRefund(15000)
	if s.GetRefund() != 30000 {
		t.Error("refund accumulation wrong")
	}
	snap := s.Snapshot()
	s.AddRefund(4800)
	s.RevertToSnapshot(snap)
	if s.GetRefund() != 30000 {
		t.Error("refund not reverted")
	}
	s.SubRefund(30000)
	if s.GetRefund() != 0 {
		t.Error("SubRefund wrong")
	}
}

func TestLogsJournaled(t *testing.T) {
	s := New()
	s.SetTxContext(types.BytesToHash([]byte{1}), 3, 12)
	s.AddLog(&types.Log{Address: addr(1)})
	snap := s.Snapshot()
	s.AddLog(&types.Log{Address: addr(2)})
	s.AddLog(&types.Log{Address: addr(3)})
	if len(s.Logs()) != 3 {
		t.Fatal("logs not recorded")
	}
	s.RevertToSnapshot(snap)
	if len(s.Logs()) != 1 {
		t.Error("logs not reverted")
	}
	logs := s.TakeLogs()
	if len(logs) != 1 || logs[0].TxIndex != 3 || logs[0].BlockNumber != 12 {
		t.Error("log context wrong")
	}
	if len(s.Logs()) != 0 {
		t.Error("TakeLogs did not clear")
	}
}

func TestCommitRootDeterministic(t *testing.T) {
	build := func() types.Hash {
		s := New()
		for i := byte(1); i <= 20; i++ {
			s.AddBalance(addr(i), uint256.NewInt(uint64(i)*1000))
			s.SetNonce(addr(i), uint64(i))
			s.SetState(addr(i), slot(i), slot(i+1))
		}
		return s.Commit()
	}
	if build() != build() {
		t.Error("commit root not deterministic")
	}
}

func TestCommitRootChangesWithState(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.NewInt(1))
	r1 := s.Commit()
	s.AddBalance(addr(1), uint256.NewInt(1))
	r2 := s.Commit()
	if r1 == r2 {
		t.Error("root unchanged after balance change")
	}
	if s.Root() != r2 {
		t.Error("Root() out of date")
	}
}

func TestEmptyStateRoot(t *testing.T) {
	s := New()
	if s.Commit() != trie.EmptyRoot {
		t.Error("empty state root != EmptyRoot")
	}
}

func TestStorageSurvivesCommitCycles(t *testing.T) {
	s := New()
	a := addr(9)
	s.SetState(a, slot(1), slot(11))
	s.SetState(a, slot(2), slot(22))
	s.Commit()
	s.SetState(a, slot(3), slot(33))
	s.Commit()
	if s.GetState(a, slot(1)) != slot(11) || s.GetState(a, slot(2)) != slot(22) || s.GetState(a, slot(3)) != slot(33) {
		t.Error("storage lost across commits")
	}
	// Clearing a slot must remove it.
	s.SetState(a, slot(2), types.Hash{})
	s.Commit()
	if !s.GetState(a, slot(2)).IsZero() {
		t.Error("cleared slot survived")
	}
}

func TestCopyIsolation(t *testing.T) {
	s := New()
	a := addr(10)
	s.AddBalance(a, uint256.NewInt(100))
	s.SetState(a, slot(1), slot(5))
	s.SetCode(a, []byte{0xaa})
	s.Commit()

	cp := s.Copy()
	cp.AddBalance(a, uint256.NewInt(900))
	cp.SetState(a, slot(1), slot(6))

	if s.GetBalance(a).Uint64() != 100 {
		t.Error("copy mutation leaked balance")
	}
	if s.GetState(a, slot(1)) != slot(5) {
		t.Error("copy mutation leaked storage")
	}
	if cp.GetBalance(a).Uint64() != 1000 || cp.GetState(a, slot(1)) != slot(6) {
		t.Error("copy lost its own mutations")
	}
	if string(cp.GetCode(a)) != "\xaa" {
		t.Error("copy lost code")
	}
	// Copy must be able to commit independently.
	if cp.Commit() == s.Root() {
		t.Error("diverged copies share a root")
	}
}

func TestEmptyPerEIP161(t *testing.T) {
	s := New()
	a := addr(11)
	if !s.Empty(a) {
		t.Error("missing account not empty")
	}
	s.AddBalance(a, new(uint256.Int)) // touch with zero
	if !s.Empty(a) {
		t.Error("zero-balance touched account not empty")
	}
	s.AddBalance(a, uint256.NewInt(1))
	if s.Empty(a) {
		t.Error("funded account considered empty")
	}
}

func TestFinaliseClearsJournal(t *testing.T) {
	s := New()
	s.AddBalance(addr(1), uint256.NewInt(10))
	s.AddRefund(100)
	s.Finalise()
	if s.GetRefund() != 0 {
		t.Error("refund survived finalise")
	}
	if s.Snapshot() != 0 {
		t.Error("journal not cleared")
	}
	// Post-finalise revert to 0 must be a no-op, not roll back balances.
	s.RevertToSnapshot(0)
	if s.GetBalance(addr(1)).Uint64() != 10 {
		t.Error("finalised mutation rolled back")
	}
}

// TestParallelCommitMatchesSerial: the parallel storage flush must produce
// the identical state root as a serial flush of the same mutations.
func TestParallelCommitMatchesSerial(t *testing.T) {
	build := func() *StateDB {
		s := New()
		for a := byte(1); a <= 24; a++ {
			s.SetNonce(addr(a), uint64(a))
			s.AddBalance(addr(a), uint256.NewInt(uint64(a)*1000))
			for k := byte(0); k < 8; k++ {
				s.SetState(addr(a), slot(a^k), types.BytesToHash([]byte{a, k, a + k}))
			}
		}
		return s
	}
	serial, parallel := build(), build()
	// Serial flush.
	serial.Finalise()
	var sObjs []*stateObject
	for _, obj := range serial.objects {
		if len(obj.storage) > 0 {
			sObjs = append(sObjs, obj)
		}
	}
	serial.flushStorage(sObjs, 1)
	rootSerial := serial.Commit()
	// Parallel flush.
	parallel.Finalise()
	var pObjs []*stateObject
	for _, obj := range parallel.objects {
		if len(obj.storage) > 0 {
			pObjs = append(pObjs, obj)
		}
	}
	parallel.flushStorage(pObjs, 8)
	rootParallel := parallel.Commit()
	if rootSerial != rootParallel {
		t.Fatalf("parallel commit root %s, serial %s", rootParallel.Hex(), rootSerial.Hex())
	}
	// Storage still readable after both.
	for a := byte(1); a <= 24; a++ {
		for k := byte(0); k < 8; k++ {
			want := types.BytesToHash([]byte{a, k, a + k})
			if got := parallel.GetState(addr(a), slot(a^k)); got != want {
				t.Fatalf("account %d slot %d: got %s, want %s", a, k, got.Hex(), want.Hex())
			}
		}
	}
}
