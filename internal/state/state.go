// Package state implements the world state: accounts with balances, nonces,
// contract code and storage, journaled for transactional revert (the EVM's
// snapshot/revert semantics) and committed into a Merkle Patricia Trie for
// a verifiable state root.
package state

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"onoffchain/internal/keccak"
	"onoffchain/internal/rlp"
	"onoffchain/internal/trie"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

// Account is the canonical four-field Ethereum account.
type Account struct {
	Nonce    uint64
	Balance  *uint256.Int
	Root     types.Hash // storage trie root
	CodeHash types.Hash
}

// EncodeRLP encodes the account for the state trie.
func (a *Account) EncodeRLP() []byte {
	return rlp.EncodeList(
		rlp.Uint(a.Nonce),
		rlp.Bytes(a.Balance.Bytes()),
		rlp.Bytes(a.Root.Bytes()),
		rlp.Bytes(a.CodeHash.Bytes()),
	)
}

func decodeAccount(enc []byte) (*Account, error) {
	item, err := rlp.Decode(enc)
	if err != nil {
		return nil, err
	}
	if item.Kind != rlp.KindList || len(item.Items) != 4 {
		return nil, fmt.Errorf("state: malformed account encoding")
	}
	nonce, err := item.Items[0].Uint64()
	if err != nil {
		return nil, err
	}
	bal := new(uint256.Int).SetBytes(item.Items[1].Bytes)
	return &Account{
		Nonce:    nonce,
		Balance:  bal,
		Root:     types.BytesToHash(item.Items[2].Bytes),
		CodeHash: types.BytesToHash(item.Items[3].Bytes),
	}, nil
}

// stateObject is the in-memory representation of an account under
// modification.
type stateObject struct {
	address        types.Address
	account        Account
	code           []byte
	storage        map[types.Hash]types.Hash // dirty view
	originStorage  map[types.Hash]types.Hash // committed view (lazy)
	selfDestructed bool
	deleted        bool // removed at commit
	created        bool // created in this transaction scope
}

func newObject(addr types.Address) *stateObject {
	return &stateObject{
		address:       addr,
		account:       Account{Balance: new(uint256.Int), Root: trie.EmptyRoot, CodeHash: types.EmptyCodeHash},
		storage:       make(map[types.Hash]types.Hash),
		originStorage: make(map[types.Hash]types.Hash),
	}
}

func (o *stateObject) empty() bool {
	return o.account.Nonce == 0 && o.account.Balance.IsZero() && o.account.CodeHash == types.EmptyCodeHash
}

// journalEntry undoes one state mutation.
type journalEntry struct {
	revert func(*StateDB)
	dirty  *types.Address // account touched, for dirty tracking
}

// StateDB is the mutable world state with snapshot/revert support.
type StateDB struct {
	db      *trie.Database
	tr      *trie.SecureTrie
	codes   map[types.Hash][]byte
	objects map[types.Address]*stateObject

	// fallbackCodes is a read-only parent code store consulted on misses
	// (set by ForkRecording so concurrent forks never write the shared
	// map); rec, when non-nil, captures the read/write footprint of the
	// running transaction (see access.go).
	fallbackCodes map[types.Hash][]byte
	rec           *Access

	root types.Hash // root as of the last Commit

	// dirties are accounts mutated since the last Commit. Commit flushes
	// only these: rewriting every cached object would make each block
	// commit O(all accounts ever touched) — quadratic over a long chain.
	dirties map[types.Address]struct{}

	journal []journalEntry
	refund  uint64
	logs    []*types.Log

	// Per-transaction context for logs.
	txHash  types.Hash
	txIndex uint
	block   uint64
}

// New creates an empty state backed by a fresh trie database.
func New() *StateDB {
	db := trie.NewDatabase()
	return &StateDB{
		db:      db,
		tr:      trie.NewSecure(db),
		root:    trie.EmptyRoot,
		codes:   make(map[types.Hash][]byte),
		objects: make(map[types.Address]*stateObject),
		dirties: make(map[types.Address]struct{}),
	}
}

// SetTxContext sets the transaction context recorded on emitted logs.
func (s *StateDB) SetTxContext(txHash types.Hash, txIndex uint, block uint64) {
	s.txHash, s.txIndex, s.block = txHash, txIndex, block
}

func (s *StateDB) getObject(addr types.Address) *stateObject {
	if obj, ok := s.objects[addr]; ok {
		if obj.deleted {
			return nil
		}
		return obj
	}
	// Load from trie if committed earlier.
	enc := s.tr.Get(addr.Bytes())
	if enc == nil {
		return nil
	}
	acct, err := decodeAccount(enc)
	if err != nil {
		panic("state: corrupt account: " + err.Error())
	}
	obj := newObject(addr)
	obj.account = *acct
	obj.account.Balance = acct.Balance.Clone()
	s.objects[addr] = obj
	return obj
}

func (s *StateDB) getOrCreateObject(addr types.Address) *stateObject {
	if obj := s.getObject(addr); obj != nil {
		return obj
	}
	obj := newObject(addr)
	prev, hadPrev := s.objects[addr]
	s.objects[addr] = obj
	s.appendJournal(addr, func(db *StateDB) {
		if hadPrev {
			db.objects[addr] = prev
		} else {
			delete(db.objects, addr)
		}
	})
	return obj
}

func (s *StateDB) appendJournal(addr types.Address, revert func(*StateDB)) {
	a := addr
	s.dirties[addr] = struct{}{}
	s.journal = append(s.journal, journalEntry{revert: revert, dirty: &a})
}

// Exist reports whether the account exists (even if empty).
func (s *StateDB) Exist(addr types.Address) bool {
	s.recordAccountRead(addr)
	return s.getObject(addr) != nil
}

// Empty reports whether the account is non-existent or empty per EIP-161.
func (s *StateDB) Empty(addr types.Address) bool {
	s.recordAccountRead(addr)
	obj := s.getObject(addr)
	return obj == nil || obj.empty()
}

// CreateAccount explicitly creates an account (contract deployment target).
func (s *StateDB) CreateAccount(addr types.Address) {
	s.recordAccountWrite(addr, wCreated)
	obj := s.getOrCreateObject(addr)
	obj.created = true
}

// GetBalance returns the account balance (zero for missing accounts).
func (s *StateDB) GetBalance(addr types.Address) *uint256.Int {
	s.recordAccountRead(addr)
	if obj := s.getObject(addr); obj != nil {
		return obj.account.Balance.Clone()
	}
	return new(uint256.Int)
}

// AddBalance credits the account.
func (s *StateDB) AddBalance(addr types.Address, amount *uint256.Int) {
	s.recordAccountWrite(addr, wBalance)
	obj := s.getOrCreateObject(addr)
	prev := obj.account.Balance.Clone()
	s.appendJournal(addr, func(*StateDB) { obj.account.Balance = prev })
	obj.account.Balance = new(uint256.Int).Add(obj.account.Balance, amount)
}

// SubBalance debits the account (caller must check sufficiency).
func (s *StateDB) SubBalance(addr types.Address, amount *uint256.Int) {
	s.recordAccountWrite(addr, wBalance)
	obj := s.getOrCreateObject(addr)
	prev := obj.account.Balance.Clone()
	s.appendJournal(addr, func(*StateDB) { obj.account.Balance = prev })
	obj.account.Balance = new(uint256.Int).Sub(obj.account.Balance, amount)
}

// SetBalance forces a balance (used by genesis allocation and tests).
func (s *StateDB) SetBalance(addr types.Address, amount *uint256.Int) {
	s.recordAccountWrite(addr, wBalance)
	obj := s.getOrCreateObject(addr)
	prev := obj.account.Balance.Clone()
	s.appendJournal(addr, func(*StateDB) { obj.account.Balance = prev })
	obj.account.Balance = amount.Clone()
}

// GetNonce returns the account nonce.
func (s *StateDB) GetNonce(addr types.Address) uint64 {
	s.recordAccountRead(addr)
	if obj := s.getObject(addr); obj != nil {
		return obj.account.Nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (s *StateDB) SetNonce(addr types.Address, nonce uint64) {
	s.recordAccountWrite(addr, wNonce)
	obj := s.getOrCreateObject(addr)
	prev := obj.account.Nonce
	s.appendJournal(addr, func(*StateDB) { obj.account.Nonce = prev })
	obj.account.Nonce = nonce
}

// GetCode returns the contract code.
func (s *StateDB) GetCode(addr types.Address) []byte {
	s.recordAccountRead(addr)
	obj := s.getObject(addr)
	if obj == nil {
		return nil
	}
	if obj.code != nil {
		return obj.code
	}
	if obj.account.CodeHash == types.EmptyCodeHash {
		return nil
	}
	code, ok := s.codes[obj.account.CodeHash]
	if !ok && s.fallbackCodes != nil {
		code = s.fallbackCodes[obj.account.CodeHash]
	}
	obj.code = code
	return code
}

// GetCodeHash returns the code hash (zero hash for missing accounts).
func (s *StateDB) GetCodeHash(addr types.Address) types.Hash {
	s.recordAccountRead(addr)
	obj := s.getObject(addr)
	if obj == nil {
		return types.Hash{}
	}
	return obj.account.CodeHash
}

// GetCodeSize returns len(code).
func (s *StateDB) GetCodeSize(addr types.Address) int {
	return len(s.GetCode(addr))
}

// SetCode installs contract code.
func (s *StateDB) SetCode(addr types.Address, code []byte) {
	s.recordAccountWrite(addr, wCode)
	obj := s.getOrCreateObject(addr)
	prevHash, prevCode := obj.account.CodeHash, obj.code
	s.appendJournal(addr, func(*StateDB) {
		obj.account.CodeHash, obj.code = prevHash, prevCode
	})
	h := types.Hash(keccak.Sum256(code))
	obj.account.CodeHash = h
	obj.code = append([]byte{}, code...)
	s.codes[h] = obj.code
}

// GetState reads a storage slot.
func (s *StateDB) GetState(addr types.Address, key types.Hash) types.Hash {
	s.recordSlotRead(addr, key)
	obj := s.getObject(addr)
	if obj == nil {
		return types.Hash{}
	}
	if v, ok := obj.storage[key]; ok {
		return v
	}
	return s.committedState(obj, key)
}

// GetCommittedState reads the slot value as of the last commit (the
// "original" value used by SSTORE refund rules).
func (s *StateDB) GetCommittedState(addr types.Address, key types.Hash) types.Hash {
	s.recordSlotRead(addr, key)
	obj := s.getObject(addr)
	if obj == nil {
		return types.Hash{}
	}
	return s.committedState(obj, key)
}

func (s *StateDB) committedState(obj *stateObject, key types.Hash) types.Hash {
	if v, ok := obj.originStorage[key]; ok {
		return v
	}
	var v types.Hash
	if obj.account.Root != trie.EmptyRoot {
		st, err := trie.FromRoot(s.db, obj.account.Root)
		if err == nil {
			if enc := st.Get(keccak.Sum256Bytes(key.Bytes())); enc != nil {
				item, err := rlp.Decode(enc)
				if err == nil {
					v = types.BytesToHash(item.Bytes)
				}
			}
		}
	}
	obj.originStorage[key] = v
	return v
}

// SetState writes a storage slot.
func (s *StateDB) SetState(addr types.Address, key, value types.Hash) {
	s.recordSlotWrite(addr, key)
	obj := s.getOrCreateObject(addr)
	prev, hadPrev := obj.storage[key]
	s.appendJournal(addr, func(*StateDB) {
		if hadPrev {
			obj.storage[key] = prev
		} else {
			delete(obj.storage, key)
		}
	})
	obj.storage[key] = value
}

// SelfDestruct marks the contract for deletion and zeroes its balance.
func (s *StateDB) SelfDestruct(addr types.Address) {
	s.recordAccountWrite(addr, wDestroyed|wBalance)
	obj := s.getObject(addr)
	if obj == nil {
		return
	}
	prevBalance := obj.account.Balance.Clone()
	prevFlag := obj.selfDestructed
	s.appendJournal(addr, func(*StateDB) {
		obj.selfDestructed = prevFlag
		obj.account.Balance = prevBalance
	})
	obj.selfDestructed = true
	obj.account.Balance = new(uint256.Int)
}

// HasSelfDestructed reports whether the account is marked for deletion.
func (s *StateDB) HasSelfDestructed(addr types.Address) bool {
	s.recordAccountRead(addr)
	obj := s.getObject(addr)
	return obj != nil && obj.selfDestructed
}

// AddRefund accumulates gas refund (SSTORE clears, selfdestruct).
func (s *StateDB) AddRefund(gas uint64) {
	prev := s.refund
	s.journal = append(s.journal, journalEntry{revert: func(db *StateDB) { db.refund = prev }})
	s.refund += gas
}

// SubRefund decreases the refund counter.
func (s *StateDB) SubRefund(gas uint64) {
	prev := s.refund
	s.journal = append(s.journal, journalEntry{revert: func(db *StateDB) { db.refund = prev }})
	if gas > s.refund {
		panic("state: refund underflow")
	}
	s.refund -= gas
}

// GetRefund returns the accumulated refund.
func (s *StateDB) GetRefund() uint64 { return s.refund }

// ResetRefund clears the refund counter (start of transaction).
func (s *StateDB) ResetRefund() { s.refund = 0 }

// AddLog records an emitted log, stamped with the tx context.
func (s *StateDB) AddLog(log *types.Log) {
	log.TxHash = s.txHash
	log.TxIndex = s.txIndex
	log.BlockNumber = s.block
	log.Index = uint(len(s.logs))
	prevLen := len(s.logs)
	s.journal = append(s.journal, journalEntry{revert: func(db *StateDB) { db.logs = db.logs[:prevLen] }})
	s.logs = append(s.logs, log)
}

// Logs returns all logs recorded since the last TakeLogs.
func (s *StateDB) Logs() []*types.Log { return s.logs }

// TakeLogs returns and clears the recorded logs (end of transaction).
func (s *StateDB) TakeLogs() []*types.Log {
	logs := s.logs
	s.logs = nil
	return logs
}

// Snapshot returns an identifier for the current journal position.
func (s *StateDB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every mutation after the snapshot.
func (s *StateDB) RevertToSnapshot(id int) {
	if id < 0 || id > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot id %d (journal %d)", id, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i].revert(s)
	}
	s.journal = s.journal[:id]
}

// Finalise clears self-destructed and empty-touched accounts at transaction
// end and resets the journal (mutations become permanent).
func (s *StateDB) Finalise() {
	for _, obj := range s.objects {
		if obj.selfDestructed {
			obj.deleted = true
		}
	}
	s.journal = s.journal[:0]
	s.refund = 0
}

// Commit finalises the accounts mutated since the last Commit into the
// trie and returns the new state root. Clean cached objects are skipped.
//
// The per-account storage flush is embarrassingly parallel — each account
// owns a disjoint storage trie, and the shared node store is concurrency-
// safe — so on multi-core hosts the storage tries are flushed across a
// worker pool before the (serial, deterministic) account-trie update.
func (s *StateDB) Commit() types.Hash {
	s.Finalise()
	// Deterministic iteration order for reproducible tries.
	addrs := make([]types.Address, 0, len(s.dirties))
	for addr := range s.dirties {
		if _, ok := s.objects[addr]; ok {
			addrs = append(addrs, addr)
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i].Bytes()) < string(addrs[j].Bytes())
	})
	// Phase 1: flush every live account's dirty storage into its own
	// storage trie, in parallel when it pays.
	var flush []*stateObject
	for _, addr := range addrs {
		obj := s.objects[addr]
		if !obj.deleted && len(obj.storage) > 0 {
			flush = append(flush, obj)
		}
	}
	s.flushStorage(flush, runtime.GOMAXPROCS(0))
	// Phase 2: fold the accounts into the state trie serially.
	for _, addr := range addrs {
		obj := s.objects[addr]
		if obj.deleted {
			s.tr.Delete(addr.Bytes())
			delete(s.objects, addr)
			continue
		}
		s.tr.Update(addr.Bytes(), obj.account.EncodeRLP())
	}
	s.dirties = make(map[types.Address]struct{})
	s.root = s.tr.Hash()
	return s.root
}

// flushStorage commits the dirty storage of every object across at most
// workers goroutines. Each object's flush touches only that object and
// its own storage trie (the shared node database is mutex-guarded), so
// the resulting storage roots are identical to a serial flush.
func (s *StateDB) flushStorage(objs []*stateObject, workers int) {
	if workers > len(objs) {
		workers = len(objs)
	}
	if workers <= 1 {
		for _, obj := range objs {
			s.flushOneStorage(obj)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(objs) {
					return
				}
				s.flushOneStorage(objs[i])
			}
		}()
	}
	wg.Wait()
}

// flushOneStorage writes one account's dirty storage slots into its
// storage trie and records the new root on the account.
func (s *StateDB) flushOneStorage(obj *stateObject) {
	st, err := trie.FromRoot(s.db, obj.account.Root)
	if err != nil {
		st, _ = trie.FromRoot(s.db, trie.EmptyRoot)
	}
	keys := make([]types.Hash, 0, len(obj.storage))
	for k := range obj.storage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i].Bytes()) < string(keys[j].Bytes())
	})
	for _, k := range keys {
		v := obj.storage[k]
		hashedKey := keccak.Sum256Bytes(k.Bytes())
		if v.IsZero() {
			st.Delete(hashedKey)
		} else {
			// Store values RLP-encoded with leading zeros trimmed,
			// matching Ethereum's storage encoding.
			st.Update(hashedKey, rlp.EncodeBytes(trimLeftZeros(v.Bytes())))
		}
		obj.originStorage[k] = v
	}
	obj.account.Root = st.Hash()
	obj.storage = make(map[types.Hash]types.Hash)
}

// Root returns the state root as of the last Commit.
func (s *StateDB) Root() types.Hash { return s.root }

func trimLeftZeros(b []byte) []byte {
	i := 0
	for i < len(b) && b[i] == 0 {
		i++
	}
	return b[i:]
}

// Fork returns a view of the last committed state that loads accounts
// lazily from the trie, for eth_call-style speculative execution. Unlike
// Copy it is O(1): nothing is copied up front. The code store is shared —
// it is content-addressed and append-only, so entries a fork adds are
// harmless. The caller must ensure the canonical state is not mutated
// concurrently (Chain.Call holds the chain lock).
func (s *StateDB) Fork() *StateDB {
	tr, err := trie.NewSecureFromRoot(s.db, s.root)
	if err != nil {
		panic("state: fork from unknown root: " + err.Error())
	}
	return &StateDB{
		db:      s.db,
		tr:      tr,
		root:    s.root,
		codes:   s.codes,
		objects: make(map[types.Address]*stateObject),
		dirties: make(map[types.Address]struct{}),
	}
}

// Copy returns a deep copy of the state, including uncommitted mutations.
// The trie node store is shared: it is content-addressed and append-only,
// so sharing is safe.
func (s *StateDB) Copy() *StateDB {
	tr, err := trie.NewSecureFromRoot(s.db, s.root)
	if err != nil {
		panic("state: copy from unknown root: " + err.Error())
	}
	cp := &StateDB{
		db:      s.db,
		tr:      tr,
		root:    s.root,
		codes:   make(map[types.Hash][]byte, len(s.codes)),
		objects: make(map[types.Address]*stateObject, len(s.objects)),
		dirties: make(map[types.Address]struct{}, len(s.dirties)),
		refund:  s.refund,
	}
	for addr := range s.dirties {
		cp.dirties[addr] = struct{}{}
	}
	for h, code := range s.fallbackCodes {
		cp.codes[h] = code
	}
	for h, code := range s.codes {
		cp.codes[h] = code
	}
	for addr, obj := range s.objects {
		n := newObject(addr)
		n.account = obj.account
		n.account.Balance = obj.account.Balance.Clone()
		n.code = append([]byte{}, obj.code...)
		for k, v := range obj.storage {
			n.storage[k] = v
		}
		for k, v := range obj.originStorage {
			n.originStorage[k] = v
		}
		n.selfDestructed = obj.selfDestructed
		n.deleted = obj.deleted
		n.created = obj.created
		cp.objects[addr] = n
	}
	return cp
}
