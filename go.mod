module onoffchain

go 1.24
