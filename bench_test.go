// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure, plus the ablations indexed in DESIGN.md §4. Each benchmark
// reports the headline quantities as custom metrics (gas, bytes), so the
// paper's numbers appear directly in `go test -bench` output; cmd/bench
// prints the same data as formatted tables.
package onoffchain

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/experiments"
	"onoffchain/internal/federation"
	"onoffchain/internal/hub"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

// BenchmarkTable2GasCost reproduces paper Table II: the gas cost of the
// two dispute-resolution extra functions. Paper (Kovan, Solidity):
// deployVerifiedInstance() = 225082 + reveal(), returnDisputeResolution()
// = 37745.
func BenchmarkTable2GasCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]uint64{64})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].DeployVIGas), "gas/deployVerifiedInstance")
		b.ReportMetric(float64(rows[0].ReturnDRGas), "gas/returnDisputeResolution")
		b.ReportMetric(float64(rows[0].OffChainBytecode), "bytes/signed-copy")
	}
}

// BenchmarkTable2RevealSweep exposes the additive "+ reveal()" structure
// of the paper's deploy cost account.
func BenchmarkTable2RevealSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]uint64{0, 256, 1024})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ReturnDRGas), "gas/returnDR-0-rounds")
		b.ReportMetric(float64(rows[2].ReturnDRGas), "gas/returnDR-1024-rounds")
	}
}

// BenchmarkFig1ModelComparison reproduces paper Fig. 1: miner gas under
// the all-on-chain model vs the hybrid model over a full lifecycle.
func BenchmarkFig1ModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1([]uint64{512})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.MonolithGas), "gas/all-on-chain")
		b.ReportMetric(float64(r.HybridHonestGas), "gas/hybrid-honest")
		b.ReportMetric(float64(r.HybridDisputeGas), "gas/hybrid-dispute")
		b.ReportMetric(r.HonestSavingsPct, "%savings")
	}
}

// BenchmarkFig2StageCosts reproduces paper Fig. 2: per-stage cost of the
// four-stage enforcement mechanism.
func BenchmarkFig2StageCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(64)
		if err != nil {
			b.Fatal(err)
		}
		var onChain, offChain float64
		for _, r := range rows {
			if r.OnChain {
				onChain += float64(r.Gas)
			} else {
				offChain += float64(r.Gas)
			}
		}
		b.ReportMetric(onChain, "gas/on-chain-stages")
		b.ReportMetric(offChain, "gas/off-chain-stages")
	}
}

// BenchmarkAblationDisputeProbability (A1): expected miner gas vs p and
// the crossover against the all-on-chain baseline.
func BenchmarkAblationDisputeProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DisputeProbability(512, []float64{0, 0.5, 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ExpectedHybrid, "gas/expected-p0")
		b.ReportMetric(rows[2].ExpectedHybrid, "gas/expected-p1")
		b.ReportMetric(float64(rows[0].MonolithGas), "gas/monolith")
	}
}

// BenchmarkAblationPrivacyLeakage (A2): public bytes per model and the
// bytes kept private by the honest hybrid path.
func BenchmarkAblationPrivacyLeakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PrivacyLeakage(64)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Model {
			case "all-on-chain":
				b.ReportMetric(float64(r.CodeBytes+r.CalldataBytes), "bytes/public-monolith")
			case "hybrid (honest)":
				b.ReportMetric(float64(r.CodeBytes+r.CalldataBytes), "bytes/public-hybrid")
				b.ReportMetric(float64(r.HiddenBytes), "bytes/kept-private")
			}
		}
	}
}

// BenchmarkAblationParticipants (A3): deployVerifiedInstance gas as the
// signer set grows (n-of-n ecrecover verification).
func BenchmarkAblationParticipants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Participants([]int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].DeployVIGas), "gas/n2")
		b.ReportMetric(float64(rows[1].DeployVIGas), "gas/n8")
	}
}

// BenchmarkAblationDeposit (A4): the dispute-resolution cost a security
// deposit must cover to make the honest resolver whole.
func BenchmarkAblationDeposit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DepositCompensation(64, []uint64{1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ResolverGasCost), "gas/resolver-cost")
	}
}

// BenchmarkHonestLifecycle measures wall-clock for one full honest hybrid
// run (protocol overhead, not chain consensus).
func BenchmarkHonestLifecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBettingLifecycle(experiments.ModeHybrid, 64, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisputeLifecycle measures wall-clock for one full dispute run.
func BenchmarkDisputeLifecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBettingLifecycle(experiments.ModeHybrid, 64, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubThroughput is the scalability headline the paper claims but
// never measures: N concurrent hybrid sessions driven end-to-end through
// all four stages (split/generate, deploy/sign, submit/challenge,
// dispute/resolve) on ONE dev chain by the internal/hub orchestrator. One
// session in ten is adversarial, so the watchtower's dispute path is part
// of the measured workload.
//
// The mining axis compares the chain's two block-production policies over
// the same fleet: mining=auto is the dev-chain block-per-transaction
// policy, mining=batch pools many sessions' transactions and seals them
// into shared blocks (chain.StartMining), with every receipt delivered
// through the WaitReceipt pipeline. Compare sessions/sec and the blocks
// metric between them: batch mining must collapse blocks-per-run by an
// order of magnitude (each block amortizes its commit/header work across
// many sessions), and its sessions/sec gain scales with how much of the
// host's CPU the per-block overhead was costing — see DESIGN.md §6 for
// the measured breakdown.
//
// The wal=on variants run the same fleet with the durable session store
// attached (every lifecycle transition written ahead to disk); compare
// sessions/sec against wal=off when touching the store or journal —
// measured overhead is a few percent, and anything approaching the
// issue's 20% acceptance bound is a regression. Nothing enforces this
// automatically (CI does not run benchmarks); it is a manual gate.
//
// The towers axis federates the guard duty (internal/federation): the
// hub's watchtower becomes one of three members, with two standalone
// towers adopting every session's guard state over gossip and sharing
// dispute duty by rendezvous assignment. Compare sessions/sec against
// towers=1 when touching the federation or the dispute pipeline — the
// acceptance bound is 10% (the honest 90% of windows ride the owner's
// vouch and cost the fleet only gossip; disputes pay one election delay).
// Reports sessions/sec, blocks mined, and per-stage latency.
func BenchmarkHubThroughput(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, mining := range []string{"auto", "batch"} {
			mining := mining
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=1/wal=off", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", false, 1, false, false, false)
			})
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=1/wal=on", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", true, 1, false, false, false)
			})
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=3/wal=off", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", false, 3, false, false, false)
			})
			// The signed-gossip leg: every fleet envelope (heartbeats,
			// guard exports, window mirrors, intents) carries a secp256k1
			// signature — the opt-in PR 4 had to drop on the big.Int
			// curve. Ran at the full matrix to show heartbeat-rate
			// signing no longer taxes hub throughput.
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=3/wal=off/gossip=signed", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", false, 3, true, false, false)
			})
			// The telemetry leg: same fleet with a shared metrics registry
			// and span tracer attached to every layer. Compare sessions/sec
			// against the telemetry=off twin above — the acceptance bound is
			// 5% (the hot path adds only atomic increments and one ring slot
			// per lifecycle edge); see DESIGN.md §10.
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=1/wal=off/telemetry=on", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", false, 1, false, true, false)
			})
			// The flight-recording leg: the tracer additionally tees every
			// span to an on-disk flight recorder (the cross-process
			// observability surface cmd/trace merges). Compare sessions/sec
			// against the telemetry=on twin — the acceptance bound is 2%:
			// Record is one non-blocking channel send, and the JSONL
			// encoding happens on the recorder's own writer goroutine.
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=1/wal=off/telemetry=on/flight=on", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "persession", false, 1, false, true, true)
			})
			// The settlement axis: Merkle-batched rollup settlement
			// (internal/rollup) instead of one submit + one finalize
			// transaction per session. Compare the settle_txs and
			// settle_gas_total metrics against the settle=persession twin
			// above — the acceptance bound is ≥50× fewer settlement
			// transactions and ≥10× less settlement gas at 1000 sessions
			// (see DESIGN.md §14); sessions/sec should not regress, since
			// the sequencer removes two receipt waits per session.
			b.Run(fmt.Sprintf("sessions=%d/mining=%s/towers=1/wal=off/settle=rollup", n, mining), func(b *testing.B) {
				benchHubThroughput(b, n, mining, "serial", "rollup", false, 1, false, false, false)
			})
		}
		// Rollup with the WAL attached: every leaf, seal, and post is
		// journaled ahead of the irreversible action (the crash-recovery
		// contract the torn-epoch tests enforce). Compare against the
		// wal=off rollup twin.
		b.Run(fmt.Sprintf("sessions=%d/mining=auto/towers=1/wal=on/settle=rollup", n), func(b *testing.B) {
			benchHubThroughput(b, n, "auto", "serial", "rollup", true, 1, false, false, false)
		})
		// The exec axis: batch-mined blocks executed by the optimistic
		// parallel engine (chain.ExecParallel). Only meaningful under batch
		// mining — AutoMine blocks hold one transaction, and a width-1 batch
		// falls back to the serial engine anyway. Compare sessions/sec and
		// the parallel_reexec_rate metric against the exec=serial twin; the
		// speedup scales with cores (the Config.cores field in BENCH.json
		// records what the host offered).
		b.Run(fmt.Sprintf("sessions=%d/mining=batch/towers=1/wal=off/exec=parallel", n), func(b *testing.B) {
			benchHubThroughput(b, n, "batch", "parallel", "persession", false, 1, false, false, false)
		})
		b.Run(fmt.Sprintf("sessions=%d/mining=batch/towers=1/wal=off/exec=parallel/telemetry=on", n), func(b *testing.B) {
			benchHubThroughput(b, n, "batch", "parallel", "persession", false, 1, false, true, false)
		})
	}
}

func benchHubThroughput(b *testing.B, n int, mining, exec, settle string, wal bool, towers int, signGossip, telem, flight bool) {
	for i := 0; i < b.N; i++ {
		hubThroughputIteration(b, n, mining, exec, settle, wal, towers, signGossip, telem, flight)
	}
}

// BenchmarkHubThroughputProfile runs exactly ONE fleet configuration,
// chosen by environment, so -cpuprofile/-memprofile captures a single
// leg (the matrix legs above prefix-match each other under -bench, which
// contaminates profiles). Used for the towers=3 AutoMine gap attribution
// in DESIGN.md §7:
//
//	ONOFFCHAIN_PROFILE_TOWERS=3 go test -run xxx \
//	  -bench HubThroughputProfile -benchtime 3x -cpuprofile t3.prof .
func BenchmarkHubThroughputProfile(b *testing.B) {
	atoi := func(key string, def int) int {
		if v := os.Getenv(key); v != "" {
			n := 0
			if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
				return n
			}
		}
		return def
	}
	n := atoi("ONOFFCHAIN_PROFILE_SESSIONS", 1000)
	towers := atoi("ONOFFCHAIN_PROFILE_TOWERS", 3)
	mining := os.Getenv("ONOFFCHAIN_PROFILE_MINING")
	if mining == "" {
		mining = "auto"
	}
	exec := os.Getenv("ONOFFCHAIN_PROFILE_EXEC")
	if exec == "" {
		exec = "serial"
	}
	flight := os.Getenv("ONOFFCHAIN_PROFILE_FLIGHT") == "on"
	benchHubThroughput(b, n, mining, exec, "persession", os.Getenv("ONOFFCHAIN_PROFILE_WAL") == "on", towers,
		os.Getenv("ONOFFCHAIN_PROFILE_GOSSIP") == "signed",
		os.Getenv("ONOFFCHAIN_PROFILE_TELEMETRY") == "on" || flight, flight)
}

// Batch-mining parameters for the benchmark: the deadline is a few
// multiples of the fleet's transaction inter-arrival time so each block
// genuinely aggregates concurrent sessions, and the cap seals early under
// bursts.
const (
	benchMineInterval = 60 * time.Millisecond
	benchMineBatch    = 512
	// benchWorkers sizes the hub's pool for both mining policies. Batch
	// mining needs enough concurrent sessions to hide block latency (a
	// worker parked on WaitReceipt costs nothing while others have CPU
	// work); AutoMine is insensitive to pool size beyond the core count.
	benchWorkers = 64
)

// hubThroughputIteration is one measured fleet run in its own function so
// its defers run PER ITERATION: a Fatal (or just -count=N) must not leave
// the dev chain's subscription pump goroutines, the mining driver, the
// worker pool, or the WAL's segment file open into the next measurement.
func hubThroughputIteration(b *testing.B, n int, mining, exec, settle string, wal bool, towers int, signGossip, telem, flight bool) {
	b.StopTimer()
	defer b.StartTimer()
	faucetKey, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xFA0CE7))
	if err != nil {
		b.Fatal(err)
	}
	// A BENCH.json destination forces the registry on even for telemetry=off
	// legs: the per-stage quantiles in the record come from the registry's
	// hub_stage_seconds histograms.
	benchJSON := os.Getenv("ONOFFCHAIN_BENCH_JSON")
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if telem || benchJSON != "" {
		reg = telemetry.NewRegistry()
	}
	if telem {
		tracer = telemetry.NewTracer(0)
		if flight {
			fr, err := telemetry.NewFlightRecorder(b.TempDir(), "hub", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer fr.Close()
			tracer.Tee(fr.Record)
		}
	}
	faucetAddr := types.Address(faucetKey.EthereumAddress())
	ccfg := chain.DefaultConfig()
	ccfg.Telemetry = reg
	if mining == "batch" {
		ccfg.AutoMine = false
	}
	if exec == "parallel" {
		ccfg.Exec = chain.ExecParallel // workers default to GOMAXPROCS
	}
	c := chain.New(ccfg, map[types.Address]*uint256.Int{
		faucetAddr: new(uint256.Int).Mul(uint256.NewInt(100_000_000), uint256.NewInt(1e18)),
	})
	if mining == "batch" {
		if err := c.StartMining(benchMineInterval, benchMineBatch); err != nil {
			b.Fatal(err)
		}
		defer c.StopMining()
	}
	net := whisper.NewNetwork(c.Now)
	cfg := hub.Config{Workers: benchWorkers, Telemetry: reg, Tracer: tracer}
	if settle == "rollup" {
		// Depth 8 = up to 256 leaves per epoch; the age bound seals a
		// partial epoch after one mining deadline so a trickle of stragglers
		// cannot stall the fleet's tail.
		cfg.Rollup = &hub.RollupConfig{Depth: 8, EpochAge: benchMineInterval}
	}
	if wal {
		st, err := store.Open(b.TempDir(), store.Options{Telemetry: reg})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		cfg.Store = st
	}
	h := hub.New(c, net, faucetKey, cfg)
	defer h.Stop()
	var fedTowers []*federation.Tower
	if towers > 1 {
		keys := make([]*secp256k1.PrivateKey, towers)
		members := make([]types.Address, towers)
		for i := range keys {
			k, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(uint64(0x70_3E_00 + i)))
			if err != nil {
				b.Fatal(err)
			}
			keys[i] = k
			members[i] = types.Address(k.EthereumAddress())
		}
		registry := hub.NewSpecRegistry(hub.BettingSpec(4, 600, false), hub.BettingSpec(4, 600, true))
		mk := func(k *secp256k1.PrivateKey) federation.Config {
			return federation.Config{Chain: c, Net: net, Key: k, Members: members, Registry: registry,
				SignGossip: signGossip,
				Logf:       func(string, ...interface{}) {}}
		}
		ht, err := federation.AttachHub(h, mk(keys[0]))
		if err != nil {
			b.Fatal(err)
		}
		fedTowers = append(fedTowers, ht)
		for i := 1; i < towers; i++ {
			st, err := federation.Join(mk(keys[i]))
			if err != nil {
				b.Fatal(err)
			}
			fedTowers = append(fedTowers, st)
		}
		// Stop the hub (draining sessions) before the guard towers.
		defer func() {
			h.Stop()
			for _, ft := range fedTowers {
				ft.Stop()
			}
		}()
	}
	specs := make([]*hub.Spec, n)
	for s := range specs {
		specs[s] = hub.BettingSpec(4, 600, s%10 == 0)
	}
	var msBefore runtime.MemStats
	if benchJSON != "" {
		runtime.ReadMemStats(&msBefore)
	}
	b.StartTimer()

	start := time.Now()
	reports := h.Run(specs)
	elapsed := time.Since(start)

	b.StopTimer()
	var allocsPerSession float64
	if benchJSON != "" {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		allocsPerSession = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(n)
	}
	disputes := 0
	for s, rep := range reports {
		if rep.Err != nil {
			b.Fatalf("session %d failed: %v", s, rep.Err)
		}
		if rep.Disputed {
			disputes++
		}
	}
	m := h.Metrics()
	if int(m.SessionsCompleted) != n {
		b.Fatalf("metrics inconsistent: completed=%d of %d", m.SessionsCompleted, n)
	}
	if towers > 1 {
		// Federated: disputes may be filed by any member. Enforcement is
		// exactly-once per lie (chain-guaranteed), so fleet-wide wins must
		// equal the disputed sessions; filings can exceed them only by
		// races the settled veto absorbed (reverted, never enforced).
		filed, won := uint64(0), uint64(0)
		for _, ft := range fedTowers {
			fm := ft.Metrics()
			filed += fm.DisputesFiled
			won += fm.DisputesWon
		}
		if int(won) != disputes || filed < won {
			b.Fatalf("fleet filed %d / won %d disputes for %d disputed sessions", filed, won, disputes)
		}
	} else if int(m.DisputesWon) != disputes {
		b.Fatalf("metrics inconsistent: disputes=%d/%d", m.DisputesWon, disputes)
	}
	b.ReportMetric(float64(n)/elapsed.Seconds(), "sessions/sec")
	b.ReportMetric(float64(c.Height()), "blocks")
	for _, st := range []hub.Stage{hub.StageDeployed, hub.StageSigned, hub.StageExecuted, hub.StageSubmitted, hub.StageSettled, hub.StageRolledUp} {
		if agg, ok := m.Stages[st]; ok {
			b.ReportMetric(float64(agg.Avg.Microseconds())/1000, "ms/"+st.String())
		}
	}
	b.ReportMetric(float64(m.DisputesWon), "disputes-won")
	// The settlement cost axis (satellite of DESIGN.md §14): settlement
	// COMMITS only — submit+finalize transactions in per-session mode,
	// epoch posts in rollup mode. Dispute enforcement is costed separately
	// in both modes and excluded here.
	b.ReportMetric(float64(m.SettleTxs), "settle-txs")
	b.ReportMetric(float64(m.SettleGas)/float64(n), "gas/session-settle")

	if benchJSON != "" {
		quantiles := map[string]map[string]float64{}
		for _, st := range []hub.Stage{hub.StageDeployed, hub.StageSigned, hub.StageExecuted, hub.StageSubmitted, hub.StageSettled} {
			h := reg.Histogram("hub_stage_seconds", telemetry.DurationBuckets(), "stage", st.String())
			if qm := telemetry.QuantileMap(h); qm != nil {
				quantiles["stage_"+st.String()+"_seconds"] = qm
			}
		}
		if qm := telemetry.QuantileMap(reg.Histogram("chain_mine_seconds", telemetry.DurationBuckets())); qm != nil {
			quantiles["chain_mine_seconds"] = qm
		}
		if qm := telemetry.QuantileMap(reg.Histogram("chain_exec_seconds", telemetry.DurationBuckets(), "exec", exec)); qm != nil {
			quantiles["chain_exec_seconds"] = qm
		}
		metrics := map[string]float64{
			"sessions_per_sec":    float64(n) / elapsed.Seconds(),
			"blocks":              float64(c.Height()),
			"disputes_won":        float64(m.DisputesWon),
			"allocs_per_session":  allocsPerSession,
			"settle_txs":          float64(m.SettleTxs),
			"settle_gas_total":    float64(m.SettleGas),
			"settle_gas_per_sess": float64(m.SettleGas) / float64(n),
			"settle_txs_per_sess": float64(m.SettleTxs) / float64(n),
		}
		if settle == "rollup" && reg != nil {
			metrics["rollup_epochs"] = float64(reg.Counter("rollup_epochs_total").Value())
			metrics["rollup_leaves"] = float64(reg.Counter("rollup_leaves_total").Value())
		}
		if exec == "parallel" {
			// The conflict cost of optimism: what fraction of speculatively
			// executed transactions had to be re-run serially at commit.
			parTxs := reg.Counter("chain_parallel_txs_total").Value()
			reexec := reg.Counter("chain_parallel_reexec_total").Value()
			metrics["parallel_txs"] = float64(parTxs)
			metrics["parallel_reexec"] = float64(reexec)
			if parTxs > 0 {
				metrics["parallel_reexec_rate"] = float64(reexec) / float64(parTxs)
			}
		}
		rec := telemetry.BenchRecord{
			Name:   b.Name(),
			GitRev: telemetry.GitRev(),
			When:   time.Now().UTC().Format(time.RFC3339),
			Config: map[string]any{
				"sessions": n, "mining": mining, "wal": wal,
				"towers": towers, "gossip_signed": signGossip, "telemetry": telem, "settle": settle,
				"flight": flight, "exec": exec, "cores": runtime.GOMAXPROCS(0),
			},
			Metrics:   metrics,
			Quantiles: quantiles,
		}
		if err := telemetry.AppendBenchJSON(benchJSON, rec); err != nil {
			b.Logf("BENCH.json append failed: %v", err)
		}
	}
}
