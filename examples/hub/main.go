// Hub demonstrates the concurrent session orchestrator: a fleet of
// betting and auction sessions runs through the four-stage mechanism on
// one dev chain, while the hub's watchtower monitors chain events. One
// submitter is dishonest — watch the tower catch the lie inside the
// challenge window and force the true result through dispute/resolve.
// A log subscription (the push counterpart of FilterLogs) streams the
// settlement events live.
//
// The second act is the durability demo: a WAL-backed hub is killed the
// instant a fraudulent result lands on-chain, then rebuilt with
// hub.Recover — which replays the log, re-arms the watchtower over the
// still-open challenge window, and makes sure the lie is disputed
// exactly once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"onoffchain/internal/chain"
	"onoffchain/internal/federation"
	"onoffchain/internal/hub"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/rollup"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/store"
	"onoffchain/internal/telemetry"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

// obs bundles the opt-in observability handles threaded through every
// act of the demo. The handles are nil without -telemetry/-flight-record,
// and every instrumented layer treats nil as a no-op.
type obs struct {
	reg    *telemetry.Registry
	tr     *telemetry.Tracer
	flight string // -flight-record directory ("" disables)
}

// tracer returns a span recorder for one logical process of the demo.
// Without -flight-record every act shares the main in-memory tracer; with
// it, each process gets its own tracer teed into its own recorder file —
// the cross-process split, exercised in-process — and the returned close
// drains that file.
func (o obs) tracer(proc string) (*telemetry.Tracer, func()) {
	if o.flight == "" {
		return o.tr, func() {}
	}
	tr := telemetry.NewTracer(0)
	fr, err := telemetry.NewFlightRecorder(o.flight, proc, nil)
	if err != nil {
		log.Fatalf("flight recorder %s: %v", proc, err)
	}
	fr.RegisterMetrics(o.reg)
	tr.Tee(fr.Record)
	return tr, func() { fr.Close() }
}

// execPolicy is the -exec flag mapped to a chain config value; every act's
// chain is built with it. Parallel execution only changes anything for the
// batch-mining act (AutoMine blocks hold one transaction, and width-1
// batches fall back to the serial engine), but applying it everywhere keeps
// the demo honest about "same results under either engine".
var execPolicy chain.ExecPolicy

func applyExec(ccfg *chain.Config) {
	ccfg.Exec = execPolicy
}

func main() {
	towers := flag.Int("towers", 3, "federation size for the tower-federation act (1 disables it)")
	settleMode := flag.String("settle", "persession", `settlement mode for the fleet act: "persession" (one submit + one finalize transaction per session) or "rollup" (Merkle-batched epochs, one transaction per epoch)`)
	execMode := flag.String("exec", "serial", `block execution engine: "serial" or "parallel" (multi-core optimistic scheduling; identical blocks either way)`)
	telemetryAddr := flag.String("telemetry", "", "optional observability listen address (e.g. :6060); serves /metrics, /healthz, /debug/trace, /debug/pprof/* and keeps the process alive after the demos for scraping")
	flightDir := flag.String("flight-record", "", "directory for flight-recorder span files, one sequence per logical process (merge with cmd/trace)")
	flag.Parse()
	var rollupCfg *hub.RollupConfig
	switch *settleMode {
	case "persession":
	case "rollup":
		rollupCfg = &hub.RollupConfig{Depth: 4, EpochAge: 150 * time.Millisecond}
	default:
		log.Fatalf("unknown -settle mode %q (want persession or rollup)", *settleMode)
	}
	switch *execMode {
	case "serial":
	case "parallel":
		execPolicy = chain.ExecParallel
	default:
		log.Fatalf("unknown -exec mode %q (want serial or parallel)", *execMode)
	}

	var o obs
	o.flight = *flightDir
	if *telemetryAddr != "" || *flightDir != "" {
		o.reg = telemetry.NewRegistry()
		o.tr = telemetry.NewTracer(0)
		o.reg.RegisterRuntimeMetrics()
		o.reg.PublishExpvar("hub")
	}
	if *telemetryAddr != "" {
		tsrv, err := telemetry.Serve(*telemetryAddr, o.reg, o.tr)
		if err != nil {
			log.Fatalf("telemetry listen: %v", err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry: curl http://%s/metrics  (traces at /debug/trace)\n\n", tsrv.Addr())
	}
	if *flightDir != "" {
		fr, err := telemetry.NewFlightRecorder(*flightDir, "hub", nil)
		if err != nil {
			log.Fatalf("flight recorder: %v", err)
		}
		defer fr.Close()
		fr.RegisterMetrics(o.reg)
		o.tr.Tee(fr.Record)
		fmt.Printf("flight recorder: %s/hub-*.jsonl (merge with `go run ./cmd/trace %s`)\n\n", *flightDir, *flightDir)
	}

	// World: a dev chain with a rich faucet, a whisper network, a hub.
	faucetKey, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xFA0CE7))
	if err != nil {
		log.Fatal(err)
	}
	ccfg := chain.DefaultConfig()
	applyExec(&ccfg)
	ccfg.Telemetry = o.reg
	ccfg.Tracer = o.tr
	c := chain.New(ccfg, map[types.Address]*uint256.Int{
		types.Address(faucetKey.EthereumAddress()): eth(1_000_000),
	})
	net := whisper.NewNetwork(c.Now)
	h := hub.New(c, net, faucetKey, hub.Config{Workers: 4, Telemetry: o.reg, Tracer: o.tr, Rollup: rollupCfg})

	// Stream finalization and dispute events live over the push API. In
	// rollup mode no per-session finalizations exist — the epoch feed shows
	// the batched commits instead.
	finalized := c.SubscribeLogs(chain.FilterQuery{Topic: &hybrid.TopicResultFinalized})
	resolved := c.SubscribeLogs(chain.FilterQuery{Topic: &hybrid.TopicDisputeResolved})
	epochs := c.SubscribeLogs(chain.FilterQuery{Topic: &rollup.TopicEpochPosted})
	var feedWG sync.WaitGroup
	feedWG.Add(3)
	go func() {
		defer feedWG.Done()
		for l := range epochs.Logs() {
			if ev, err := rollup.DecodeEpochPosted(l); err == nil {
				fmt.Printf("  [events] block %4d  epoch %d POSTED root=%s.. (%d sessions in one tx)\n",
					l.BlockNumber, ev.Epoch, ev.Root.Hex()[:10], ev.Count)
			}
		}
	}()
	go func() {
		defer feedWG.Done()
		for l := range finalized.Logs() {
			r, _ := hybrid.DecodeResultWord(l)
			fmt.Printf("  [events] block %4d  %s  finalized result=%d (unchallenged)\n",
				l.BlockNumber, l.Address.Hex()[:10], r)
		}
	}()
	go func() {
		defer feedWG.Done()
		for l := range resolved.Logs() {
			r, _ := hybrid.DecodeResultWord(l)
			fmt.Printf("  [events] block %4d  %s  DISPUTE RESOLVED result=%d (enforced by miners)\n",
				l.BlockNumber, l.Address.Hex()[:10], r)
		}
	}()

	// The fleet: honest betting and auction sessions, plus one betting
	// session whose representative will submit a flipped result.
	specs := []*hub.Spec{
		hub.BettingSpec(64, 600, false),
		hub.AuctionSpec(600, false),
		hub.BettingSpec(64, 600, true), // the adversary
		hub.BettingSpec(64, 600, false),
		hub.AuctionSpec(600, false),
	}
	fmt.Printf("running %d concurrent sessions (1 adversarial) through the hub...\n\n", len(specs))
	reports := h.Run(specs)
	m := h.Metrics()

	// Flush the live event feed before summarizing.
	h.Stop()
	finalized.Unsubscribe()
	resolved.Unsubscribe()
	epochs.Unsubscribe()
	feedWG.Wait()

	fmt.Println("\nper-session outcome:")
	for i, rep := range reports {
		if rep.Err != nil {
			log.Fatalf("session %d (%s) failed: %v", i, rep.Scenario, rep.Err)
		}
		verdict := "settled honestly"
		if rep.Stage == hub.StageRolledUp {
			verdict = "rolled up (no per-session settle tx)"
		}
		if rep.Disputed {
			at, deadline := rep.Watch.DisputeTiming()
			// The margin is against the watchtower's NOMINAL window
			// (submission + policy period); the on-chain deadlines carry a
			// much larger slack, so a fast fleet can mine past the nominal
			// mark while the async dispute files and still win — signed
			// arithmetic keeps that case readable.
			verdict = fmt.Sprintf("lied (%d for %d) -> auto-disputed at t=%d, %+ds vs the nominal window close",
				rep.Submitted, rep.Result, at, int64(deadline)-int64(at))
		}
		fmt.Printf("  %-20s stage=%-9s result=%d  %s\n", rep.Scenario, rep.Stage, rep.Result, verdict)
	}

	fmt.Printf("\nhub metrics: %d sessions in %s (%.1f sessions/sec), watchtower saw %d submissions, disputes raised/won %d/%d\n",
		m.SessionsCompleted, m.Elapsed.Round(1e6), m.SessionsPerSec, m.SubmissionsSeen, m.DisputesRaised, m.DisputesWon)
	if rollupCfg != nil {
		fmt.Printf("settlement: %d sessions committed by %d rollup transaction(s), %d gas total (%d gas/session)\n",
			m.SessionsCompleted, m.SettleTxs, m.SettleGas, m.SettleGas/m.SessionsCompleted)
	}
	fmt.Println("per-stage latency (avg/max):")
	var stages []hub.Stage
	for s := range m.Stages {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i] < stages[j] })
	for _, s := range stages {
		st := m.Stages[s]
		fmt.Printf("  %-10s %8s / %s\n", s, st.Avg.Round(1e4), st.Max.Round(1e4))
	}

	durabilityDemo(c, net, faucetKey, o)
	batchMiningDemo(faucetKey, o)
	if *towers > 1 {
		federationDemo(faucetKey, *towers, o)
	}

	if *telemetryAddr != "" {
		fmt.Printf("\ndemos done — telemetry still serving on %s (ctrl-c to exit)\n", *telemetryAddr)
		select {}
	}
}

// federationDemo is the liveness headline of internal/federation: N
// towers share guard duty; the hub — the member that OWNS the fraudulent
// session — is killed the instant the lie lands on-chain, and a standalone
// backup tower escalates and disputes it before the window closes.
func federationDemo(faucetKey *secp256k1.PrivateKey, towers int, o obs) {
	fmt.Printf("\n--- tower federation: %d towers, primary killed mid-window, backup disputes ---\n", towers)
	ccfg := chain.DefaultConfig()
	applyExec(&ccfg)
	ccfg.Telemetry = o.reg
	ccfg.Tracer = o.tr
	c := chain.New(ccfg, map[types.Address]*uint256.Int{
		types.Address(faucetKey.EthereumAddress()): eth(1_000_000),
	})
	net := whisper.NewNetwork(c.Now)

	keys := make([]*secp256k1.PrivateKey, towers)
	members := make([]types.Address, towers)
	for i := range keys {
		k, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(uint64(0x70_3E_00 + i)))
		if err != nil {
			log.Fatal(err)
		}
		keys[i] = k
		members[i] = types.Address(k.EthereumAddress())
	}
	spec := hub.BettingSpec(64, 600, true)
	registry := hub.NewSpecRegistry(spec)

	// The hub is federation member 0; the lie's window must survive its
	// death, so kill it the moment the fraudulent submission completes.
	var h *hub.Hub
	h = hub.New(c, net, faucetKey, hub.Config{Workers: 2, Telemetry: o.reg, Tracer: o.tr, StageHook: func(sid uint64, s hub.Stage) bool {
		if s == hub.StageSubmitted {
			h.Kill()
		}
		return !h.Crashed()
	}})
	quiet := func(string, ...interface{}) {}
	mk := func(k *secp256k1.PrivateKey) federation.Config {
		return federation.Config{
			Chain: c, Net: net, Key: k, Members: members, Registry: registry,
			HeartbeatEvery: 50 * time.Millisecond, EscalateAfter: 300 * time.Millisecond,
			Logf: quiet, Telemetry: o.reg, Tracer: o.tr,
		}
	}
	hubTower, err := federation.AttachHub(h, mk(keys[0]))
	if err != nil {
		log.Fatal(err)
	}
	backups := make([]*federation.Tower, 0, towers-1)
	for i := 1; i < towers; i++ {
		// Each backup is a logical process of its own: with -flight-record
		// it records spans under its own proc name, and cmd/trace stitches
		// the hub's and the backups' files back into one causal timeline.
		cfg := mk(keys[i])
		tr, closeRec := o.tracer(fmt.Sprintf("tower-%d", i))
		cfg.Tracer = tr
		defer closeRec()
		bt, err := federation.Join(cfg)
		if err != nil {
			log.Fatal(err)
		}
		backups = append(backups, bt)
		defer bt.Stop()
	}

	rep := h.Submit(spec).Report()
	h.Stop()
	hubTower.Kill()
	hubTower.Stop()
	fmt.Printf("  hub (member 0) KILLED at stage %s: the lie is on-chain, its owner is dead\n", rep.Stage)

	logs := c.FilterLogs(chain.FilterQuery{Topic: &hybrid.TopicResultSubmitted})
	if len(logs) != 1 {
		log.Fatalf("expected exactly one submission, got %d", len(logs))
	}
	contract := logs[0].Address
	ev, err := hybrid.DecodeResultSubmitted(logs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  window open on %s until t=%d; backups guard it from gossiped state\n", contract.Hex()[:10], ev.At+600)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeResolved})) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, bt := range backups {
		m := bt.Metrics()
		if m.DisputesWon > 0 {
			fmt.Printf("  backup tower %d (%s) escalated and ENFORCED the dispute at chain time %d — %ds before the deadline\n",
				i+1, bt.Self().Hex()[:10], c.Now(), ev.At+600-c.Now())
		}
	}
	if len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeResolved})) == 0 {
		log.Fatal("no backup disputed the lie")
	}
	fmt.Printf("  exactly-once: %d DisputeOpened event(s) on the contract\n",
		len(c.FilterLogs(chain.FilterQuery{Address: &contract, Topic: &hybrid.TopicDisputeOpened})))
}

// batchMiningDemo retires the AutoMine assumption live: the same fleet
// machinery runs against a chain with AutoMine off, where a background
// driver (chain.StartMining) seals many sessions' transactions into each
// block and every receipt arrives through the WaitReceipt pipeline. Watch
// the block count: a block-per-transaction chain would mint hundreds of
// blocks for this fleet; the batch driver amortizes them by an order of
// magnitude.
func batchMiningDemo(faucetKey *secp256k1.PrivateKey, o obs) {
	fmt.Println("\n--- batch mining: one block per many sessions, receipts via WaitReceipt ---")
	ccfg := chain.DefaultConfig()
	applyExec(&ccfg)
	ccfg.AutoMine = false // batch policy: pool transactions, let the driver seal
	ccfg.Telemetry = o.reg
	ccfg.Tracer = o.tr
	c := chain.New(ccfg, map[types.Address]*uint256.Int{
		types.Address(faucetKey.EthereumAddress()): eth(1_000_000),
	})
	if err := c.StartMining(25*time.Millisecond, 256); err != nil {
		log.Fatal(err)
	}
	defer c.StopMining()
	net := whisper.NewNetwork(c.Now)
	h := hub.New(c, net, faucetKey, hub.Config{Workers: 16, Telemetry: o.reg, Tracer: o.tr})
	defer h.Stop()

	n := 20
	specs := make([]*hub.Spec, n)
	for i := range specs {
		specs[i] = hub.BettingSpec(16, 600, i%10 == 0)
	}
	reports := h.Run(specs)
	txs := 0
	for bn := uint64(1); bn <= c.Height(); bn++ {
		if b, err := c.BlockByNumber(bn); err == nil {
			txs += len(b.Transactions)
		}
	}
	disputes := 0
	for _, rep := range reports {
		if rep.Err != nil {
			log.Fatalf("batch session %d failed: %v", rep.ID, rep.Err)
		}
		if rep.Disputed {
			disputes++
		}
	}
	m := h.Metrics()
	fmt.Printf("  %d sessions (%d disputed and enforced) at %.1f sessions/sec\n",
		n, disputes, m.SessionsPerSec)
	fmt.Printf("  %d transactions in %d blocks (%.1f txs/block) — AutoMine would have minted %d blocks\n",
		txs, c.Height(), float64(txs)/float64(c.Height()), txs)
}

// durabilityDemo crashes a WAL-backed hub with a fraudulent submission's
// challenge window open, then recovers it and shows the lie still gets
// caught — the ROADMAP's "restarted hub resumes guarding open challenge
// windows" item, live.
func durabilityDemo(c *chain.Chain, net *whisper.Network, faucetKey *secp256k1.PrivateKey, o obs) {
	fmt.Println("\n--- durability: crash with an open fraudulent window, recover from the WAL ---")
	dir, err := os.MkdirTemp("", "hub-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{Telemetry: o.reg})
	if err != nil {
		log.Fatal(err)
	}

	// The hub dies the moment the (adversarial) representative's
	// submission completes: the lie is on-chain, the window is open, and
	// no watchtower is left alive to guard it.
	var dh *hub.Hub
	dh = hub.New(c, net, faucetKey, hub.Config{
		Workers:   2,
		Store:     st,
		Telemetry: o.reg,
		Tracer:    o.tr,
		StageHook: func(sid uint64, s hub.Stage) bool {
			if s == hub.StageSubmitted {
				dh.Kill()
			}
			return !dh.Crashed()
		},
	})
	spec := hub.BettingSpec(64, 600, true)
	rep := dh.Submit(spec).Report()
	dh.Stop()
	fmt.Printf("  hub KILLED at stage %s, session %d: fraudulent submission on-chain, window open\n", rep.Stage, rep.ID)
	st.Close()

	// "Restart the process": reopen the WAL, recover, and let the tower
	// replay the chain events it missed from its durable cursor.
	st2, err := store.Open(dir, store.Options{Telemetry: o.reg})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	h2, rec, err := hub.Recover(st2, c, net, faucetKey, hub.Config{Workers: 2, Telemetry: o.reg, Tracer: o.tr}, hub.NewSpecRegistry(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: WAL cursor at block %d, chain events replayed through block %d\n", rec.Cursor, rec.ReplayedTo)
	for _, s := range rec.Sessions {
		fmt.Printf("  session %d (%s): %s from stage %s\n", s.ID, s.Scenario, s.Outcome, s.Stage)
	}
	for _, tk := range rec.Resumed() {
		r := tk.Report()
		if r.Err != nil {
			log.Fatalf("recovered session failed: %v", r.Err)
		}
		verdict := "settled honestly"
		if r.Disputed {
			verdict = "lie caught — dispute enforced the true result"
		}
		fmt.Printf("  session %d terminal: stage=%s result=%d  %s\n", r.ID, r.Stage, r.Result, verdict)
	}
	m2 := h2.Metrics()
	// The dispute lands in one of two places, both correct: usually the
	// recovered tower files it (raised/won 1/1 after restart); rarely the
	// dying tower beat Kill to the submission block and the dispute is
	// already settled on-chain when recovery starts (raised 0 here).
	where := "filed by the RECOVERED tower"
	if m2.DisputesRaised == 0 {
		where = "already enforced before the crash (the dying tower won the race)"
	}
	fmt.Printf("  recovered tower: %d resumed, %d disputes raised / %d won after restart — %s\n",
		m2.SessionsRecovered, m2.DisputesRaised, m2.DisputesWon, where)
	h2.Stop()
}
