// Hub demonstrates the concurrent session orchestrator: a fleet of
// betting and auction sessions runs through the four-stage mechanism on
// one dev chain, while the hub's watchtower monitors chain events. One
// submitter is dishonest — watch the tower catch the lie inside the
// challenge window and force the true result through dispute/resolve.
// A log subscription (the push counterpart of FilterLogs) streams the
// settlement events live.
package main

import (
	"fmt"
	"log"
	"math/big"
	"sort"
	"sync"

	"onoffchain/internal/chain"
	"onoffchain/internal/hub"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

func main() {
	// World: a dev chain with a rich faucet, a whisper network, a hub.
	faucetKey, err := secp256k1.PrivateKeyFromScalar(big.NewInt(0xFA0CE7))
	if err != nil {
		log.Fatal(err)
	}
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(faucetKey.EthereumAddress()): eth(1_000_000),
	})
	net := whisper.NewNetwork(c.Now)
	h := hub.New(c, net, faucetKey, hub.Config{Workers: 4})

	// Stream finalization and dispute events live over the push API.
	finalized := c.SubscribeLogs(chain.FilterQuery{Topic: &hybrid.TopicResultFinalized})
	resolved := c.SubscribeLogs(chain.FilterQuery{Topic: &hybrid.TopicDisputeResolved})
	var feedWG sync.WaitGroup
	feedWG.Add(2)
	go func() {
		defer feedWG.Done()
		for l := range finalized.Logs() {
			r, _ := hybrid.DecodeResultWord(l)
			fmt.Printf("  [events] block %4d  %s  finalized result=%d (unchallenged)\n",
				l.BlockNumber, l.Address.Hex()[:10], r)
		}
	}()
	go func() {
		defer feedWG.Done()
		for l := range resolved.Logs() {
			r, _ := hybrid.DecodeResultWord(l)
			fmt.Printf("  [events] block %4d  %s  DISPUTE RESOLVED result=%d (enforced by miners)\n",
				l.BlockNumber, l.Address.Hex()[:10], r)
		}
	}()

	// The fleet: honest betting and auction sessions, plus one betting
	// session whose representative will submit a flipped result.
	specs := []*hub.Spec{
		hub.BettingSpec(64, 600, false),
		hub.AuctionSpec(600, false),
		hub.BettingSpec(64, 600, true), // the adversary
		hub.BettingSpec(64, 600, false),
		hub.AuctionSpec(600, false),
	}
	fmt.Printf("running %d concurrent sessions (1 adversarial) through the hub...\n\n", len(specs))
	reports := h.Run(specs)
	m := h.Metrics()

	// Flush the live event feed before summarizing.
	h.Stop()
	finalized.Unsubscribe()
	resolved.Unsubscribe()
	feedWG.Wait()

	fmt.Println("\nper-session outcome:")
	for i, rep := range reports {
		if rep.Err != nil {
			log.Fatalf("session %d (%s) failed: %v", i, rep.Scenario, rep.Err)
		}
		verdict := "settled honestly"
		if rep.Disputed {
			at, deadline := rep.Watch.DisputeTiming()
			verdict = fmt.Sprintf("lied (%d for %d) -> auto-disputed at t=%d, %ds before the window closed",
				rep.Submitted, rep.Result, at, deadline-at)
		}
		fmt.Printf("  %-20s stage=%-9s result=%d  %s\n", rep.Scenario, rep.Stage, rep.Result, verdict)
	}

	fmt.Printf("\nhub metrics: %d sessions in %s (%.1f sessions/sec), watchtower saw %d submissions, disputes raised/won %d/%d\n",
		m.SessionsCompleted, m.Elapsed.Round(1e6), m.SessionsPerSec, m.SubmissionsSeen, m.DisputesRaised, m.DisputesWon)
	fmt.Println("per-stage latency (avg/max):")
	var stages []hub.Stage
	for s := range m.Stages {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i] < stages[j] })
	for _, s := range stages {
		st := m.Stages[s]
		fmt.Printf("  %-10s %8s / %s\n", s, st.Avg.Round(1e4), st.Max.Round(1e4))
	}
}
