// Auction demonstrates the hybrid model on a second workload: a two-party
// sealed-bid trade whose private scoring rule (bids and weights) stays
// off-chain. It also shows the automatic classifier recommending the split.
package main

import (
	"fmt"
	"log"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

func main() {
	// The classifier reproduces the paper's taxonomy automatically.
	profiles, err := hybrid.Classify(hybrid.AuctionSource, "Auction", hybrid.ClassifierConfig{
		SecretVars: []string{"bidA", "bidB", "weightQuality", "weightPrice"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classifier output (paper §II-B heavy/private vs light/public):")
	fmt.Println(hybrid.FormatProfiles(profiles))

	split, err := hybrid.Split(hybrid.AuctionSource, "Auction", hybrid.AuctionPolicy(600))
	if err != nil {
		log.Fatal(err)
	}

	keyA, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x5e11e4))
	keyB, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xb1dde4))
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(keyA.EthereumAddress()): eth(20),
		types.Address(keyB.EthereumAddress()): eth(20),
	})
	net := whisper.NewNetwork(c.Now)
	seller := hybrid.NewParticipant(keyA, c, net)
	buyer := hybrid.NewParticipant(keyB, c, net)

	sess, err := hybrid.NewSession(split, []*hybrid.Participant{seller, buyer})
	if err != nil {
		log.Fatal(err)
	}
	ctorArgs := []interface{}{
		seller.Addr, buyer.Addr,
		uint64(431), uint64(977), // sealed bids — never revealed on-chain
		uint64(3), uint64(7), // private scoring weights
		c.Now() + 10_000,
	}
	if _, err := sess.DeployOnChain(3_000_000, ctorArgs...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-chain half deployed at %s — bids and weights pruned from its constructor\n",
		sess.OnChainAddr.Hex())
	if err := sess.SignAndExchange(ctorArgs...); err != nil {
		log.Fatal(err)
	}

	for _, p := range []*hybrid.Participant{seller, buyer} {
		if r, err := p.Invoke(split.OnChain, sess.OnChainAddr, eth(2), 300_000, "deposit"); err != nil || !r.Succeeded() {
			log.Fatalf("deposit: %v", err)
		}
	}
	fmt.Printf("both parties escrowed 2 ether; pot = %s wei\n", sess.OnChainBalance())

	outcome, err := sess.ExecuteOffChainAll()
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"seller", "buyer"}
	fmt.Printf("private scoring ran off-chain: winner index = %d (%s)\n", outcome.Result, names[outcome.Result])

	// Here nobody even submits — the winner enforces directly through the
	// signed copy (the mechanism works from any stage).
	deployR, returnR, err := sess.Dispute(int(outcome.Result))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enforced through verified instance: deploy gas %d, return gas %d\n",
		deployR.GasUsed, returnR.GasUsed)
	settled, _ := sess.IsSettled()
	fmt.Printf("settled = %v; %s receives the pot\n", settled, names[outcome.Result])
}
