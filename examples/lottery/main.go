// Lottery runs the hybrid protocol with MORE than two participants: a
// four-party pool whose private draw happens off-chain, showing how the
// signed copy and deployVerifiedInstance scale with n (the paper's n-of-n
// signature design, measured in ablation A3).
package main

import (
	"fmt"
	"log"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

func main() {
	const n = 4
	split, err := hybrid.Split(hybrid.MultiPartySource(n), "Pool", hybrid.MultiPartyPolicy(600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool split for %d participants; deployVerifiedInstance takes %d parameters (bytes + 3 per signer)\n",
		split.Participants, len(split.OnChain.Funcs["deployVerifiedInstance"].Params))

	alloc := map[types.Address]*uint256.Int{}
	keys := make([]*secp256k1.PrivateKey, n)
	for i := range keys {
		keys[i], _ = secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(uint64(0x10C0 + i)))
		alloc[types.Address(keys[i].EthereumAddress())] = eth(10)
	}
	c := chain.NewDefault(alloc)
	net := whisper.NewNetwork(c.Now)

	parties := make([]*hybrid.Participant, n)
	ctorArgs := make([]interface{}, 0, n+1)
	for i, k := range keys {
		parties[i] = hybrid.NewParticipant(k, c, net)
		ctorArgs = append(ctorArgs, parties[i].Addr)
	}
	ctorArgs = append(ctorArgs, uint64(0xD1CE)) // the draw seed

	sess, err := hybrid.NewSession(split, parties)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.DeployOnChain(6_000_000, ctorArgs...); err != nil {
		log.Fatal(err)
	}
	if err := sess.SignAndExchange(ctorArgs...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signed copy holds %d signatures over %d bytecode bytes\n",
		len(sess.Copy.Sigs), len(sess.Copy.Bytecode))

	for i, p := range parties {
		if r, err := p.Invoke(split.OnChain, sess.OnChainAddr, eth(1), 300_000, "deposit"); err != nil || !r.Succeeded() {
			log.Fatalf("deposit %d: %v", i, err)
		}
	}
	fmt.Printf("all %d participants staked 1 ether; pot = %s wei\n", n, sess.OnChainBalance())

	outcome, err := sess.ExecuteOffChainAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private draw (unanimous across %d local executions): winner = participant %d\n",
		n, outcome.Result)

	// Honest settlement via submit + challenge window.
	if _, err := sess.SubmitResult(0, outcome.Result); err != nil {
		log.Fatal(err)
	}
	c.AdvanceTime(700)
	if _, err := sess.FinalizeResult(1); err != nil {
		log.Fatal(err)
	}
	settled, _ := sess.IsSettled()
	winner := parties[outcome.Result]
	fmt.Printf("settled = %v; winner balance = %s wei\n", settled, c.BalanceAt(winner.Addr))
}
