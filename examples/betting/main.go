// Betting walks the paper's §IV example end to end, twice: the honest path
// (Table I rules 1-4: deposit, off-chain agreement, submit, finalize) and
// the dispute path (rule 5: the loser lies, the winner reveals the signed
// copy, miners enforce the truth). It prints the same gas accounts the
// paper's Table II reports.
package main

import (
	"fmt"
	"log"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
	"onoffchain/internal/whisper"
)

func eth(n uint64) *uint256.Int {
	return new(uint256.Int).Mul(uint256.NewInt(n), uint256.NewInt(1e18))
}

func run(dispute bool) {
	title := "HONEST PATH (Table I rules 1-4)"
	if dispute {
		title = "DISPUTE PATH (Table I rule 5)"
	}
	fmt.Printf("\n========== %s ==========\n", title)

	// World: Alice, Bob, a dev chain, and a whisper network.
	keyA, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xA11CE))
	keyB, _ := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0xB0B))
	c := chain.NewDefault(map[types.Address]*uint256.Int{
		types.Address(keyA.EthereumAddress()): eth(10),
		types.Address(keyB.EthereumAddress()): eth(10),
	})
	net := whisper.NewNetwork(c.Now)
	alice := hybrid.NewParticipant(keyA, c, net)
	bob := hybrid.NewParticipant(keyB, c, net)

	// Stage 1 — split/generate.
	split, err := hybrid.Split(hybrid.BettingSource, "Betting", hybrid.BettingPolicy(600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 split/generate: on-chain %d B, off-chain %d B, monolith %d B\n",
		len(split.OnChain.Runtime), len(split.OffChain.Runtime), len(split.Monolith.Runtime))

	sess, err := hybrid.NewSession(split, []*hybrid.Participant{alice, bob})
	if err != nil {
		log.Fatal(err)
	}
	now := c.Now()
	ctorArgs := []interface{}{
		alice.Addr, bob.Addr, now + 1000, now + 2000, now + 3000,
		uint64(0x5ec4e7a), uint64(0x5ec4e7b), uint64(64),
	}

	// Stage 2 — deploy/sign.
	r, err := sess.DeployOnChain(3_000_000, ctorArgs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 deploy: on-chain contract at %s (gas %d)\n", sess.OnChainAddr.Hex(), r.GasUsed)
	if err := sess.SignAndExchange(ctorArgs...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 sign: signed copy = %d bytecode bytes + %d signatures (exchanged over whisper, AES-GCM sealed)\n",
		len(sess.Copy.Bytecode), len(sess.Copy.Sigs))

	// Rule 2: deposits.
	for _, p := range []*hybrid.Participant{alice, bob} {
		r, err := p.Invoke(split.OnChain, sess.OnChainAddr, eth(1), 300_000, "deposit")
		if err != nil || !r.Succeeded() {
			log.Fatalf("deposit: %v", err)
		}
	}
	fmt.Printf("rule 2: both deposited 1 ether; pot = %s wei\n", sess.OnChainBalance())

	// Rule 4: off-chain computation after T2.
	c.AdvanceTime(2100)
	outcome, err := sess.ExecuteOffChainAll()
	if err != nil {
		log.Fatal(err)
	}
	winner := []*hybrid.Participant{alice, bob}[outcome.Result]
	names := []string{"Alice", "Bob"}
	fmt.Printf("rule 4: off-chain result = %d (%s wins); %d gas-equivalents stayed off the public chain\n",
		outcome.Result, names[outcome.Result], outcome.DeployGas+outcome.ExecGas)

	if !dispute {
		r, err := sess.SubmitResult(0, outcome.Result)
		if err != nil || !r.Succeeded() {
			log.Fatalf("submit: %v", err)
		}
		fmt.Printf("submit: representative submitted result (gas %d); challenge window opens\n", r.GasUsed)
		c.AdvanceTime(700)
		r, err = sess.FinalizeResult(1)
		if err != nil || !r.Succeeded() {
			log.Fatalf("finalize: %v", err)
		}
		fmt.Printf("finalize: unchallenged result settled (gas %d)\n", r.GasUsed)
	} else {
		liar := 1 - int(outcome.Result)
		r, err := sess.SubmitResult(liar, uint64(1-outcome.Result))
		if err != nil || !r.Succeeded() {
			log.Fatalf("lying submit: %v", err)
		}
		fmt.Printf("rule 5: %s (the loser) submitted a FALSE result (gas %d)\n", names[liar], r.GasUsed)
		deployR, returnR, err := sess.Dispute(int(outcome.Result))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dispute: deployVerifiedInstance()    gas = %d   (paper: 225082 + reveal())\n", deployR.GasUsed)
		fmt.Printf("dispute: returnDisputeResolution()   gas = %d   (paper: 37745)\n", returnR.GasUsed)
		fmt.Printf("dispute: verified instance at %s\n", sess.InstanceAddr.Hex())
	}

	settled, _ := sess.IsSettled()
	fmt.Printf("settled = %v; pot drained = %v; %s balance = %s wei\n",
		settled, sess.OnChainBalance().IsZero(), names[outcome.Result], c.BalanceAt(winner.Addr))
}

func main() {
	fmt.Println("Paper §IV: the Alice/Bob betting contract under the hybrid on/off-chain model")
	run(false)
	run(true)
}
