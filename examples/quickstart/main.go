// Quickstart: compile a Solo contract, deploy it on the in-process dev
// chain, call it, and read an event — the minimal end-to-end tour of the
// substrate the reproduction is built on.
package main

import (
	"fmt"
	"log"

	"onoffchain/internal/chain"
	"onoffchain/internal/hybrid"
	"onoffchain/internal/lang"
	"onoffchain/internal/secp256k1"
	"onoffchain/internal/types"
	"onoffchain/internal/uint256"
)

const src = `
contract Greeter {
    uint greetings;
    address owner;

    event Greeted(address who, uint count);

    constructor(address o) {
        owner = o;
    }

    function greet() public {
        greetings = greetings + 1;
        emit Greeted(msg.sender, greetings);
    }

    function count() public view returns (uint) {
        return greetings;
    }
}
`

func main() {
	// A funded account on a fresh dev chain.
	key, err := secp256k1.PrivateKeyFromScalar(secp256k1.ScalarFromUint64(0x1234))
	if err != nil {
		log.Fatal(err)
	}
	me := types.Address(key.EthereumAddress())
	ten := new(uint256.Int).Mul(uint256.NewInt(10), uint256.NewInt(1e18))
	c := chain.NewDefault(map[types.Address]*uint256.Int{me: ten})
	alice := hybrid.NewParticipant(key, c, nil)
	fmt.Printf("account %s funded with %s wei\n", me.Hex(), c.BalanceAt(me))

	// Compile.
	compiled, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	greeter := compiled.Contracts["Greeter"]
	fmt.Printf("compiled Greeter: %d bytes runtime, %d public functions\n",
		len(greeter.Runtime), len(greeter.Funcs))

	// Deploy with a constructor argument.
	code, err := greeter.DeployWithArgs(me)
	if err != nil {
		log.Fatal(err)
	}
	addr, receipt, err := alice.Deploy(code, nil, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed at %s (gas %d)\n", addr.Hex(), receipt.GasUsed)

	// Transact.
	for i := 0; i < 3; i++ {
		r, err := alice.Invoke(greeter, addr, nil, 200_000, "greet")
		if err != nil || !r.Succeeded() {
			log.Fatalf("greet failed: %v", err)
		}
		fmt.Printf("greet #%d: gas %d, %d log(s), topic %s\n",
			i+1, r.GasUsed, len(r.Logs), r.Logs[0].Topics[0].Hex()[:18]+"…")
	}

	// Read back.
	v, err := alice.Query(greeter, addr, "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count() = %s\n", v.(*uint256.Int))
	fmt.Printf("chain height %d, block time %d\n", c.Height(), c.Latest().Time())
}
